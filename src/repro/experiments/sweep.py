"""Scenario sweeps — leakage / attack-advantage curves over hardware knobs.

The paper's central claim is that the power side channel's usefulness to an
attacker degrades as hardware realism and defences are dialled up.  A
:class:`SweepSpec` makes that a first-class experiment: it names one *knob*
of a base :class:`~repro.experiments.scenario.ScenarioSpec` (a field path
such as ``adc.bits``, ``device.read_noise``, ``defense.power_noise_std`` or
``sharding``) and a value grid, and expands into a tuple of derived
scenarios differing from the base in exactly the swept field.  The
registered :class:`SweepExperiment` fans the derived scenarios out as
scenario x seed jobs — picklable, so the whole sweep runs under any
:class:`~repro.executor.Executor` backend (one host's process pool or the
distributed work queue) bit-identical to the serial path — and assembles
per-setting curves of
:func:`~repro.defenses.evaluation.leakage_correlation` and
:func:`~repro.defenses.evaluation.single_pixel_attack_advantage` with
mean +/- std across seeds.

Knob paths resolve against :class:`ScenarioSpec` fields, one level of
nesting deep (``nonidealities.current_measurement_noise``); the
reader-friendly aliases in :data:`KNOB_ALIASES` map the paper's vocabulary
onto those fields.  The shipped grids live in
:data:`~repro.experiments.config.SWEEP_PRESET_GRIDS` and register the four
built-in sweeps (``sweep-adc-bits``, ``sweep-read-noise``,
``sweep-power-noise-defense``, ``sweep-shard-geometry``) alongside the
paper pipelines, so ``python -m repro.experiments sweep-adc-bits`` works
like any other experiment.  Passing explicit scenarios to a sweep re-bases
the grid onto each of them (the default selection sweeps the spec's own
base), which is how ``run_experiments(None, ...)`` drives every sweep from
one scenario selection.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.crossbar.mapping import ShardingSpec
from repro.defenses.evaluation import leakage_correlation, single_pixel_attack_advantage
from repro.experiments.base import Experiment, ExperimentResult, Job
from repro.experiments.config import ExperimentScale, SWEEP_PRESET_GRIDS
from repro.experiments.registry import register
from repro.experiments.reporting import format_curves_with_spread
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import ScenarioSpec, get_scenario
from repro.utils.results import RunResult

#: Reader-friendly knob names (the paper's vocabulary) mapped onto
#: :class:`ScenarioSpec` field paths.  Any field path is accepted directly;
#: these are just the spellings the shipped sweeps use.
KNOB_ALIASES: Dict[str, str] = {
    "adc.bits": "probe_adc_bits",
    "device.read_noise": "device_read_noise",
    "rail.read_noise": "nonidealities.current_measurement_noise",
    "defense.power_noise_std": "defense_strength",
    "sharding.geometry": "sharding",
}

#: Single-pixel attack strength used by every sweep job (the
#: :func:`~repro.defenses.evaluation.evaluate_defense` default).
SWEEP_ATTACK_STRENGTH = 8.0

_SCENARIO_FIELDS = frozenset(f.name for f in fields(ScenarioSpec))


def resolve_knob(knob: str) -> str:
    """Normalise a knob name to a validated :class:`ScenarioSpec` field path.

    Accepts a top-level field name (``measurement_noise``), a one-level
    nested path into a dataclass-valued field
    (``nonidealities.wire_resistance``), or a :data:`KNOB_ALIASES` spelling.
    """
    path = KNOB_ALIASES.get(str(knob), str(knob))
    parts = path.split(".")
    if len(parts) > 2:
        raise ValueError(
            f"knob path {knob!r} nests too deep; at most one level "
            "(e.g. 'nonidealities.current_measurement_noise') is supported"
        )
    if parts[0] not in _SCENARIO_FIELDS:
        known = sorted(_SCENARIO_FIELDS | set(KNOB_ALIASES))
        raise ValueError(f"unknown knob {knob!r}; known knobs/fields: {known}")
    return path


def swept_field(knob: str) -> str:
    """The top-level :class:`ScenarioSpec` field a knob ultimately writes."""
    return resolve_knob(knob).split(".")[0]


def apply_knob(spec: ScenarioSpec, knob: str, value: Any) -> ScenarioSpec:
    """Return a copy of ``spec`` with the knob set to ``value`` (re-validated)."""
    parts = resolve_knob(knob).split(".")
    if len(parts) == 1:
        return spec.with_overrides(**{parts[0]: value})
    head, leaf = parts
    inner = getattr(spec, head)
    if inner is None:
        raise ValueError(
            f"cannot set {knob!r}: scenario field {head!r} is None on {spec.name!r}"
        )
    if not is_dataclass(inner):
        raise ValueError(
            f"cannot nest into {head!r}: scenario field holds a plain "
            f"{type(inner).__name__}, not a config object"
        )
    if leaf not in {f.name for f in fields(type(inner))}:
        raise ValueError(
            f"unknown knob {knob!r}: {type(inner).__name__} has no field {leaf!r}"
        )
    return spec.with_overrides(**{head: replace(inner, **{leaf: value})})


def value_label(value: Any) -> str:
    """Short JSON/label-friendly rendering of one swept value."""
    if value is None:
        return "none"
    if isinstance(value, ShardingSpec):
        return f"{value.row_shards}x{value.col_shards}-{value.reduction}"
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def _coerce_sharding(value: Any) -> Any:
    """Accept ShardingSpec / (rows, cols, reduction) / to_dict payload / None."""
    if value is None or isinstance(value, ShardingSpec):
        return value
    if isinstance(value, Mapping):
        return ShardingSpec.from_dict(dict(value))
    if isinstance(value, (tuple, list)):
        return ShardingSpec(*value)
    raise TypeError(
        f"sharding values must be ShardingSpec, (rows, cols, reduction), "
        f"a to_dict payload or None, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SweepSpec:
    """One knob of a base scenario swept over a value grid.

    Frozen, hashable and picklable like :class:`ScenarioSpec`, so sweeps
    travel inside :class:`~repro.experiments.base.Job` payloads to worker
    processes unchanged.

    Attributes
    ----------
    name:
        Sweep identifier (also the registered experiment name).
    base:
        The scenario every derived spec starts from.
    knob:
        Field path or :data:`KNOB_ALIASES` spelling of the swept knob.
    values:
        The grid, in curve order.  Sharding values may be given as
        ``(rows, cols, reduction)`` tuples or ``to_dict`` payloads; they are
        coerced to :class:`~repro.crossbar.mapping.ShardingSpec` on
        construction.
    description:
        One-line summary for ``--list``.
    """

    name: str
    base: ScenarioSpec
    knob: str
    values: Tuple[Any, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if not isinstance(self.base, ScenarioSpec):
            raise TypeError(
                f"base must be a ScenarioSpec, got {type(self.base).__name__}"
            )
        values = tuple(self.values)
        if not values:
            raise ValueError("values must contain at least one setting")
        if swept_field(self.knob) == "sharding":  # also validates the knob path
            values = tuple(_coerce_sharding(value) for value in values)
        object.__setattr__(self, "values", values)
        self.expand()  # every grid point must produce a valid scenario

    # ------------------------------------------------------------- expansion

    def expand(self) -> Tuple[ScenarioSpec, ...]:
        """The derived scenarios, one per grid value, in grid order.

        Each differs from :attr:`base` in exactly the swept field (plus the
        derived ``name``/``description``).
        """
        derived = []
        for value in self.values:
            spec = apply_knob(self.base, self.knob, value)
            label = value_label(value)
            derived.append(
                spec.with_overrides(
                    name=f"{self.base.name}@{self.knob}={label}",
                    description=f"{self.base.name} with {self.knob} = {label}",
                )
            )
        return tuple(derived)

    def rebased(self, scenario) -> "SweepSpec":
        """The same knob/grid applied to a different base scenario."""
        return replace(self, base=get_scenario(scenario))

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        encoded = [
            value.to_dict() if isinstance(value, ShardingSpec) else value
            for value in self.values
        ]
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "knob": self.knob,
            "values": encoded,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Reconstruct a :class:`SweepSpec` written by :meth:`to_dict`.

        Unknown keys are rejected (same contract as
        ``ServiceConfig.from_dict``): a typo'd sweep-knob key must fail
        loudly, not be silently dropped.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown SweepSpec fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            name=str(payload["name"]),
            base=ScenarioSpec.from_dict(payload["base"]),
            knob=str(payload["knob"]),
            values=tuple(payload["values"]),
            description=str(payload.get("description", "")),
        )


def _run_sweep_job(job: Job) -> RunResult:
    """Train the derived scenario's victim and score the side channel once.

    One probe round feeds both metrics: the leakage correlation and the
    power-guided single-pixel attack both consume the same acquired column
    sums, so they describe the same physical measurement.
    """
    scenario, scale, seed = job.scenario, job.scale, job.seed
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)
    target = scenario.build_accelerator(model.network, random_state=seed)
    prober = scenario.build_prober(target, dataset.n_features, random_state=seed)
    probe = prober.probe_all()
    leaked = probe.column_sums

    leakage = leakage_correlation(target, model.network, leaked_norms=leaked)
    advantage = single_pixel_attack_advantage(
        model.network,
        leaked,
        dataset.test_inputs,
        dataset.test_targets,
        strength=SWEEP_ATTACK_STRENGTH,
        random_state=np.random.default_rng([int(seed) & 0xFFFFFFFF, 0xAD7]),
    )

    result = RunResult(
        name=f"{job.experiment}/{scenario.name}/run{job.run_index}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "knob": job.param("knob"),
            "value": job.param("value"),
            "value_index": job.param("value_index"),
            "base": job.param("base"),
        },
    )
    result.add_metric("leakage_correlation", leakage)
    result.add_metric("single_pixel_attack_advantage", advantage)
    result.add_metric("clean_test_accuracy", model.test_accuracy)
    result.add_metric("probe_queries", probe.queries_used)
    return result


def _run_shard_geometry_job(job: Job) -> RunResult:
    """Sweep job for geometry sweeps: adds the per-shard rail attack.

    On top of the standard whole-rail probe metrics this mounts the
    :class:`~repro.sidechannel.PerShardProber` against an oracle exposing
    individual shard rails (``expose_per_tile_power=True``), scoring the
    leakage correlation of the per-shard estimate against the whole-rail
    estimate recovered *from the same queries*.  Their difference —
    ``per_shard_attack_advantage`` — is the extra information an attacker
    gains from observing rails individually; on a monolithic target both
    estimates read the same single rail and the advantage vanishes.
    """
    from repro.sidechannel import PerShardProber

    scenario, scale, seed = job.scenario, job.scale, job.seed
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)
    target = scenario.build_accelerator(model.network, random_state=seed)

    # Standard whole-rail probing — same streams as _run_sweep_job, so the
    # shared metrics stay bit-identical to what a plain sweep would record.
    prober = scenario.build_prober(target, dataset.n_features, random_state=seed)
    probe = prober.probe_all()
    leaked = probe.column_sums
    leakage = leakage_correlation(target, model.network, leaked_norms=leaked)
    advantage = single_pixel_attack_advantage(
        model.network,
        leaked,
        dataset.test_inputs,
        dataset.test_targets,
        strength=SWEEP_ATTACK_STRENGTH,
        random_state=np.random.default_rng([int(seed) & 0xFFFFFFFF, 0xAD7]),
    )

    oracle = scenario.build_oracle(
        target, random_state=seed, expose_per_tile_power=True
    )
    shard_probe = PerShardProber(
        oracle,
        dataset.n_features,
        has_bias_column=model.network.layers[0].use_bias,
    ).probe_all()
    per_shard = leakage_correlation(
        target, model.network, leaked_norms=shard_probe.per_shard_norms
    )
    whole_rail = leakage_correlation(
        target, model.network, leaked_norms=shard_probe.whole_rail_norms
    )

    result = RunResult(
        name=f"{job.experiment}/{scenario.name}/run{job.run_index}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "knob": job.param("knob"),
            "value": job.param("value"),
            "value_index": job.param("value_index"),
            "base": job.param("base"),
            "rail_grid": list(shard_probe.grid),
        },
    )
    result.add_metric("leakage_correlation", leakage)
    result.add_metric("single_pixel_attack_advantage", advantage)
    result.add_metric("clean_test_accuracy", model.test_accuracy)
    result.add_metric("probe_queries", probe.queries_used)
    result.add_metric("per_shard_leakage_correlation", per_shard)
    result.add_metric("whole_rail_leakage_correlation", whole_rail)
    result.add_metric("per_shard_attack_advantage", per_shard - whole_rail)
    return result


class SweepExperiment(Experiment):
    """Registered experiment running one :class:`SweepSpec` end to end.

    ``scenarios=None`` sweeps the spec's own base; any explicit scenario
    selection — including the four paper configurations — re-bases the grid
    onto each chosen scenario, so hardware sweeps compose with any victim
    setup.
    """

    #: Metric assembled into the ``advantage_mean``/``advantage_std`` curve.
    #: Subclasses whose jobs measure a different notion of attacker advantage
    #: (e.g. the cross-tenant targeting advantage) override this.
    advantage_metric = "single_pixel_attack_advantage"

    #: Additional per-run metrics assembled into ``<metric>_mean`` /
    #: ``<metric>_std`` curve entries.  Subclasses whose jobs report more
    #: than the two standard curves (e.g. the per-shard attack comparison)
    #: list them here.
    extra_curve_metrics: Tuple[str, ...] = ()

    def __init__(self, spec: SweepSpec, *, description: str = ""):
        self.spec = spec
        self.name = spec.name
        self.description = description or spec.description or (
            f"Leakage/attack-advantage curve over {spec.knob} "
            f"({len(spec.values)} settings, base {spec.base.name})"
        )

    def registration_fingerprint(self):
        """Two sweeps conflict unless name *and* grid agree (same class)."""
        return (type(self).__qualname__, self.spec)

    # ------------------------------------------------------------- protocol

    def run(self, scale="bench", *, scenarios=None, **kwargs) -> ExperimentResult:
        """Resolve the default selection to the sweep's own base.

        Captured *before* the shared template turns ``None`` into the four
        paper configurations, so explicitly requesting the paper scenarios
        re-bases the grid onto each of them like any other selection.
        """
        if scenarios is None:
            scenarios = (self.spec.base,)
        return super().run(scale, scenarios=scenarios, **kwargs)

    def build_jobs(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        *,
        base_seed: int = 0,
    ) -> List[Job]:
        from repro.utils.rng import seeds_for_runs

        seeds = seeds_for_runs(base_seed, scale.n_runs)
        jobs: List[Job] = []
        for sweep in self._sweeps_for(scenarios):
            for value_index, (value, derived) in enumerate(
                zip(sweep.values, sweep.expand())
            ):
                for run_index, seed in enumerate(seeds):
                    jobs.append(
                        Job(
                            experiment=self.name,
                            scenario=derived,
                            scale=scale,
                            seed=seed,
                            run_index=run_index,
                            params=(
                                ("knob", sweep.knob),
                                ("value", value_label(value)),
                                ("value_index", value_index),
                                ("base", sweep.base.name),
                            ),
                        )
                    )
        return jobs

    def _sweeps_for(self, scenarios: Sequence[ScenarioSpec]) -> Tuple[SweepSpec, ...]:
        return tuple(self.spec.rebased(scenario) for scenario in scenarios)

    run_job = staticmethod(_run_sweep_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(experiment=self.name, scale_name=scale.name)
        labels = [value_label(value) for value in self.spec.values]
        # per-base accumulation: base -> value_index -> list of per-seed runs
        per_base: Dict[str, List[List[RunResult]]] = {}
        for job, result in zip(jobs, results):
            assembled.sweep.add(result)
            if job.scenario.name not in assembled.scenarios:
                assembled.scenarios.append(job.scenario.name)
            cells = per_base.setdefault(
                job.param("base"), [[] for _ in self.spec.values]
            )
            cells[job.param("value_index")].append(result)

        def curve(cells, metric):
            mean, std = [], []
            for runs in cells:
                values = np.array([run.metrics[metric] for run in runs], dtype=float)
                mean.append(float(values.mean()))
                std.append(float(values.std()))
            return mean, std

        curves = []
        for base_name, cells in per_base.items():
            leakage_mean, leakage_std = curve(cells, "leakage_correlation")
            advantage_mean, advantage_std = curve(cells, self.advantage_metric)
            accuracy_mean, _ = curve(cells, "clean_test_accuracy")
            entry = {
                "base": base_name,
                "values": list(labels),
                "leakage_mean": leakage_mean,
                "leakage_std": leakage_std,
                "advantage_mean": advantage_mean,
                "advantage_std": advantage_std,
                "accuracy_mean": accuracy_mean,
            }
            for metric in self.extra_curve_metrics:
                metric_mean, metric_std = curve(cells, metric)
                entry[f"{metric}_mean"] = metric_mean
                entry[f"{metric}_std"] = metric_std
            curves.append(entry)
        assembled.summary["knob"] = self.spec.knob
        assembled.summary["values"] = list(labels)
        assembled.summary["attack_strength"] = SWEEP_ATTACK_STRENGTH
        assembled.summary["n_runs"] = scale.n_runs
        assembled.summary["curves"] = curves
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        """One text panel per base: the two curves with their seed spread."""
        knob = result.summary.get("knob", self.spec.knob)
        sections = []
        for entry in result.summary.get("curves", []):
            sections.append(
                format_curves_with_spread(
                    knob,
                    entry["values"],
                    {
                        "leakage": (entry["leakage_mean"], entry["leakage_std"]),
                        "advantage": (entry["advantage_mean"], entry["advantage_std"]),
                    },
                    extra={"clean acc": entry["accuracy_mean"]},
                    title=(
                        f"{self.name} — base {entry['base']} "
                        f"(scale={result.scale_name}, mean±std over "
                        f"{result.summary.get('n_runs', '?')} seeds)"
                    ),
                )
            )
        return "\n\n".join(sections)


class ShardGeometrySweepExperiment(SweepExperiment):
    """Geometry sweep scoring the per-shard rail attack per grid point.

    Jobs run :func:`_run_shard_geometry_job`, so every curve entry also
    carries ``per_shard_leakage_correlation`` /
    ``whole_rail_leakage_correlation`` / ``per_shard_attack_advantage``
    means and stds alongside the standard leakage and attack curves.  With
    finite wire resistance on the base scenario this turns the sweep into
    the security-vs-geometry result: finer shards recover leakage fidelity
    (shorter wires, less IR droop) while simultaneously handing a per-rail
    attacker more individually observable rails.
    """

    extra_curve_metrics = (
        "per_shard_leakage_correlation",
        "whole_rail_leakage_correlation",
        "per_shard_attack_advantage",
    )

    run_job = staticmethod(_run_shard_geometry_job)

    def format_result(self, result: ExperimentResult) -> str:
        knob = result.summary.get("knob", self.spec.knob)
        sections = []
        for entry in result.summary.get("curves", []):
            sections.append(
                format_curves_with_spread(
                    knob,
                    entry["values"],
                    {
                        "leakage": (entry["leakage_mean"], entry["leakage_std"]),
                        "advantage": (entry["advantage_mean"], entry["advantage_std"]),
                        "per-shard leak": (
                            entry["per_shard_leakage_correlation_mean"],
                            entry["per_shard_leakage_correlation_std"],
                        ),
                        "rail advantage": (
                            entry["per_shard_attack_advantage_mean"],
                            entry["per_shard_attack_advantage_std"],
                        ),
                    },
                    extra={"clean acc": entry["accuracy_mean"]},
                    title=(
                        f"{self.name} — base {entry['base']} "
                        f"(scale={result.scale_name}, mean±std over "
                        f"{result.summary.get('n_runs', '?')} seeds)"
                    ),
                )
            )
        return "\n\n".join(sections)


#: The shipped sweeps, keyed by name (built from config.SWEEP_PRESET_GRIDS).
SWEEPS: Dict[str, SweepSpec] = {}

for _name, (_base, _knob, _values) in SWEEP_PRESET_GRIDS.items():
    _spec = SweepSpec(
        name=_name,
        base=get_scenario(_base),
        knob=_knob,
        values=_values,
        description=(
            f"{_knob} sweep over {len(_values)} settings "
            f"(base {_base}): leakage/attack-advantage curve"
        ),
    )
    SWEEPS[_name] = _spec
    _experiment_cls = (
        ShardGeometrySweepExperiment
        if _name == "sweep-shard-geometry"
        else SweepExperiment
    )
    register(_experiment_cls(_spec))


def get_sweep(name: str) -> SweepSpec:
    """Look up a built-in sweep preset by name."""
    key = str(name)
    if key not in SWEEPS:
        raise KeyError(f"unknown sweep {name!r}; available: {sorted(SWEEPS)}")
    return SWEEPS[key]
