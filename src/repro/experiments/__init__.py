"""Experiment pipelines regenerating every table and figure of the paper.

Each module is runnable as a script (``python -m repro.experiments.table1``)
and exposes a ``run_*`` function returning structured results plus a
``format_*`` function that prints the same rows/series the paper reports.
Benchmarks in ``benchmarks/`` call the same functions with scaled-down
parameters.
"""

from repro.experiments.config import (
    DatasetConfig,
    TrainingConfig,
    ExperimentScale,
    SCALES,
    resolve_scale,
)
from repro.experiments.runner import (
    ParallelRunner,
    prepare_model,
    prepare_dataset,
    run_multi_seed,
    TrainedModel,
)
from repro.experiments.table1 import run_table1, format_table1, Table1Result
from repro.experiments.figure3 import run_figure3, format_figure3, Figure3Result
from repro.experiments.figure4 import run_figure4, format_figure4, Figure4Result
from repro.experiments.figure5 import run_figure5, format_figure5, Figure5Result
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "DatasetConfig",
    "TrainingConfig",
    "ExperimentScale",
    "SCALES",
    "resolve_scale",
    "ParallelRunner",
    "prepare_model",
    "prepare_dataset",
    "run_multi_seed",
    "TrainedModel",
    "run_table1",
    "format_table1",
    "Table1Result",
    "run_figure3",
    "format_figure3",
    "Figure3Result",
    "run_figure4",
    "format_figure4",
    "Figure4Result",
    "run_figure5",
    "format_figure5",
    "Figure5Result",
    "format_table",
    "format_series",
]
