"""Experiment pipelines regenerating every table and figure of the paper.

All pipelines follow one protocol (:class:`~repro.experiments.base.Experiment`):
they expand an :class:`~repro.experiments.config.ExperimentScale` and a list of
:class:`~repro.experiments.scenario.ScenarioSpec` into independent picklable
jobs, execute them under any :class:`~repro.executor.Executor` backend —
in-process serial, one host's process/thread pool, or the distributed work
queue (bit-identical results under every backend) — and assemble an
:class:`~repro.experiments.base.ExperimentResult`.  The registry
(:func:`get_experiment` / :func:`run_experiments`) plus the CLI
(``python -m repro.experiments``) run any subset at any scale; the historical
``run_*`` / ``format_*`` entry points remain as deprecated wrappers over
:mod:`repro.experiments.compat`.
"""

from repro.crossbar.mapping import ShardingSpec
from repro.experiments.config import (
    DatasetConfig,
    TrainingConfig,
    ExperimentScale,
    SCALES,
    SERVICE_PRESET_CONFIGS,
    SHARD_PRESET_GEOMETRIES,
    SWEEP_PRESET_GRIDS,
    resolve_scale,
)
from repro.experiments.runner import (
    ParallelRunner,
    prepare_model,
    prepare_dataset,
    run_multi_seed,
    TrainedModel,
)
from repro.experiments.base import Experiment, ExperimentResult, Job, execute_jobs
from repro.experiments.scenario import (
    PAPER_SCENARIOS,
    SCENARIOS,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    resolve_scenarios,
)
from repro.experiments.registry import (
    get_experiment,
    list_experiments,
    register,
    run_experiments,
)
from repro.experiments.sweep import (
    KNOB_ALIASES,
    SWEEPS,
    SweepExperiment,
    SweepSpec,
    apply_knob,
    get_sweep,
    resolve_knob,
    swept_field,
)
from repro.experiments.table1 import run_table1, format_table1, Table1Result
from repro.experiments.figure3 import run_figure3, format_figure3, Figure3Result
from repro.experiments.figure4 import run_figure4, format_figure4, Figure4Result
from repro.experiments.figure5 import run_figure5, format_figure5, Figure5Result
from repro.experiments.service_demo import ServiceAttackExperiment
from repro.experiments.reporting import (
    format_curves_with_spread,
    format_series,
    format_table,
)

__all__ = [
    "DatasetConfig",
    "TrainingConfig",
    "ExperimentScale",
    "SCALES",
    "SERVICE_PRESET_CONFIGS",
    "SHARD_PRESET_GEOMETRIES",
    "SWEEP_PRESET_GRIDS",
    "ShardingSpec",
    "resolve_scale",
    "ServiceAttackExperiment",
    "ParallelRunner",
    "prepare_model",
    "prepare_dataset",
    "run_multi_seed",
    "TrainedModel",
    "Experiment",
    "ExperimentResult",
    "Job",
    "execute_jobs",
    "ScenarioSpec",
    "SCENARIOS",
    "PAPER_SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "resolve_scenarios",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiments",
    "KNOB_ALIASES",
    "SWEEPS",
    "SweepExperiment",
    "SweepSpec",
    "apply_knob",
    "get_sweep",
    "resolve_knob",
    "swept_field",
    "run_table1",
    "format_table1",
    "Table1Result",
    "run_figure3",
    "format_figure3",
    "Figure3Result",
    "run_figure4",
    "format_figure4",
    "Figure4Result",
    "run_figure5",
    "format_figure5",
    "Figure5Result",
    "format_table",
    "format_series",
    "format_curves_with_spread",
]
