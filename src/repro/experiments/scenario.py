"""Declarative scenario specifications for the unified experiment API.

A :class:`ScenarioSpec` composes everything that defines one *cell* of an
experiment sweep — dataset, victim activation, crossbar hardware (device,
mapping scheme, converters, non-idealities), attacker instrument noise, and
an optional defence — as a frozen, picklable value object.  Every experiment
pipeline takes a list of scenarios and expands them into per-seed jobs, so a
new study (a noisier device, a quantised ADC, a defended victim) is a new
``ScenarioSpec`` rather than a new module.

The four configurations the paper evaluates throughout
(:data:`~repro.experiments.config.PAPER_CONFIGURATIONS`) are exposed as the
``paper/*`` presets; additional named presets cover the non-ideality and
defence studies the ROADMAP calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.crossbar.accelerator import CrossbarAccelerator
from repro.crossbar.adc_dac import ADC, DAC
from repro.crossbar.devices import IDEAL_DEVICE, PCM_DEVICE, RERAM_DEVICE, NVMDeviceModel
from repro.crossbar.mapping import ConductanceMapping, MappingScheme, ShardingSpec
from repro.crossbar.nonidealities import IDEAL_NONIDEALITIES, NonidealityConfig
from repro.defenses.noise_injection import PowerNoiseDefense
from repro.experiments.config import (
    ExperimentScale,
    PAPER_CONFIGURATIONS,
    SERVICE_PRESET_CONFIGS,
    SHARD_PRESET_GEOMETRIES,
    TENANT_PRESET_CONFIGS,
    WIRED_CROSSBAR_OHM,
    WIRED_CROSSBAR_PROBE_NOISE,
)
from repro.nn.metrics import accuracy
from repro.service.config import ServiceConfig
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber

_DEVICES: Dict[str, NVMDeviceModel] = {
    "ideal": IDEAL_DEVICE,
    "reram": RERAM_DEVICE,
    "pcm": PCM_DEVICE,
}

_ACTIVATIONS = ("linear", "softmax")

#: Defence identifiers accepted by :attr:`ScenarioSpec.defense`.
_DEFENSES = ("norm-regularizer", "rebalance", "power-noise")

#: Wire-physics knobs a dict-form ``sharding`` value may carry alongside the
#: grid geometry; they are folded into :attr:`ScenarioSpec.nonidealities`.
#: Only the 2-D IR-drop knob is accepted — the legacy 1-D ``wire_resistance``
#: attenuation is a separate nonideality and must be set there explicitly.
_SHARDING_WIRE_KNOBS = ("wire_resistance_ohm",)

#: Geometry keys of the dict form (the :meth:`ShardingSpec.to_dict` fields).
_SHARDING_GEOMETRY_KEYS = ("row_shards", "col_shards", "reduction")


def _coerce_scenario_sharding(value) -> Tuple[ShardingSpec, Dict[str, float]]:
    """Coerce a scenario ``sharding`` value to ``(spec, wire_overrides)``.

    Accepts a ``(rows, cols[, reduction])`` tuple or a mapping whose keys are
    the :meth:`~repro.crossbar.mapping.ShardingSpec.to_dict` fields plus the
    wire-physics knobs in :data:`_SHARDING_WIRE_KNOBS`.  Unknown keys are
    rejected (same contract as :meth:`ScenarioSpec.from_dict`): a typo'd
    geometry knob must fail loudly, not be silently dropped.
    """
    if isinstance(value, (tuple, list)):
        return ShardingSpec(*value), {}
    if isinstance(value, Mapping):
        payload = dict(value)
        allowed = set(_SHARDING_GEOMETRY_KEYS) | set(_SHARDING_WIRE_KNOBS)
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(
                f"unknown sharding key(s) {unknown}; "
                f"expected a subset of {sorted(allowed)}"
            )
        wire = {
            knob: float(payload.pop(knob))
            for knob in _SHARDING_WIRE_KNOBS
            if knob in payload
        }
        return ShardingSpec.from_dict(payload), wire
    raise TypeError(
        f"sharding must be a ShardingSpec, a (rows, cols, reduction) tuple, "
        f"a dict of geometry/wire knobs, or None, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named experiment configuration: dataset x victim x hardware x defence.

    Attributes
    ----------
    name:
        Preset identifier (also recorded in result metadata).
    dataset:
        A :func:`repro.datasets.load_dataset` name (``"mnist-like"`` /
        ``"cifar-like"`` and aliases).
    activation:
        Victim output activation, ``"linear"`` or ``"softmax"``.
    device:
        NVM device model: ``"ideal"``, ``"reram"`` or ``"pcm"``.
    device_read_noise:
        Optional override of the device model's per-read conductance
        fluctuation (relative std).  ``None`` keeps the named device's own
        :attr:`~repro.crossbar.devices.NVMDeviceModel.read_noise`; a value
        replaces it, so read-noise ablations sweep the real device physics
        (every analogue traversal draws a fresh conductance realisation)
        rather than a measurement-stage proxy.
    mapping_scheme:
        Weight-to-conductance mapping, ``"min_power"`` (the paper's
        assumption) or ``"balanced"`` (the hardware-level defence).
    dac_bits / adc_bits:
        Converter resolutions; ``None`` keeps the ideal continuous converters.
    nonidealities:
        Crossbar non-ideal effects (stuck cells, IR drop, drift, ...).
    measurement_noise:
        Relative std of the attacker's power-instrument noise.
    probe_adc_bits:
        Resolution of the attacker's acquisition ADC in bits (``None`` = an
        ideal continuous instrument).  This quantises the *power readings*
        the attacker records; the accelerator's own output ADC
        (:attr:`adc_bits`) digitises functional outputs only and never
        touches the analogue supply rail.
    defense:
        ``None`` or one of ``"norm-regularizer"`` (train with the column-norm
        variance penalty), ``"rebalance"`` (post-training projection towards
        uniform column norms) and ``"power-noise"`` (randomised dummy draw at
        inference time).
    defense_strength:
        Defence-specific knob: the regulariser beta, the rebalance blend in
        ``[0, 1]``, or the dummy-current scale.
    sharding:
        Optional :class:`~repro.crossbar.mapping.ShardingSpec` placing every
        layer on a grid of physical tiles (``None`` = one tile per layer).
        Ideal-device sharded execution is equivalent to the single-tile
        placement, so this axis sweeps tile geometry without changing any
        result — until non-idealities or per-tile observables enter.
    service:
        Optional :class:`~repro.service.config.ServiceConfig`: attacker
        queries are then driven through the async coalescing query service
        (:meth:`build_oracle` wraps the oracle in a
        :class:`~repro.service.facade.BatchingOracle`).  The service changes
        *how* queries reach the hardware — never the physics — and serviced
        responses are bit-identical to direct seeded queries.
    backend:
        Compute backend running the accelerator's hot-path kernels:
        ``"numpy"`` (the bit-exact reference and default), ``"torch"`` /
        ``"cupy"`` (optional accelerator backends), or ``"auto"`` (best
        available).  Like the service, the backend changes *where* the
        arithmetic runs — never the physics; within any single backend the
        seeded measurement path stays bit-identical.
    dtype:
        Kernel dtype: ``"float64"`` (reference) or ``"float32"`` (fast path,
        ~1e-6 relative tolerance vs the reference).
    description:
        One-line human-readable summary for listings.
    """

    name: str
    dataset: str = "mnist-like"
    activation: str = "softmax"
    device: str = "ideal"
    device_read_noise: Optional[float] = None
    mapping_scheme: str = "min_power"
    dac_bits: Optional[int] = None
    adc_bits: Optional[int] = None
    nonidealities: NonidealityConfig = IDEAL_NONIDEALITIES
    measurement_noise: float = 0.0
    probe_adc_bits: Optional[int] = None
    defense: Optional[str] = None
    defense_strength: float = 0.0
    sharding: Optional[ShardingSpec] = None
    service: Optional[ServiceConfig] = None
    backend: str = "numpy"
    dtype: str = "float64"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        from repro.datasets import available_datasets, canonical_dataset_name

        try:
            canonical = canonical_dataset_name(self.dataset)
        except KeyError:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; available: {available_datasets()}"
            ) from None
        # normalise aliases ("mnist" -> "mnist-like") so scenario dedup,
        # row matching, and result metadata all agree on one name
        object.__setattr__(self, "dataset", canonical)
        if self.activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got {self.activation!r}"
            )
        if self.device not in _DEVICES:
            raise ValueError(
                f"device must be one of {sorted(_DEVICES)}, got {self.device!r}"
            )
        MappingScheme(self.mapping_scheme)  # raises ValueError on bad schemes
        if self.defense is not None and self.defense not in _DEFENSES:
            raise ValueError(
                f"defense must be None or one of {_DEFENSES}, got {self.defense!r}"
            )
        if self.device_read_noise is not None and self.device_read_noise < 0:
            raise ValueError("device_read_noise must be None or >= 0")
        if self.measurement_noise < 0:
            raise ValueError("measurement_noise must be >= 0")
        if self.probe_adc_bits is not None and (
            not isinstance(self.probe_adc_bits, (int, np.integer))
            or isinstance(self.probe_adc_bits, bool)
            or self.probe_adc_bits < 1
        ):
            raise ValueError(
                f"probe_adc_bits must be None or a positive int, "
                f"got {self.probe_adc_bits!r}"
            )
        if self.defense_strength < 0:
            raise ValueError("defense_strength must be >= 0")
        if self.sharding is not None and not isinstance(self.sharding, ShardingSpec):
            spec, wire_overrides = _coerce_scenario_sharding(self.sharding)
            object.__setattr__(self, "sharding", spec)
            if wire_overrides:
                # Wire physics rides along with the dict form of the
                # geometry; fold it into the nonideality config (which
                # re-validates the values).
                object.__setattr__(
                    self,
                    "nonidealities",
                    replace(self.nonidealities, **wire_overrides),
                )
        if self.service is not None and not isinstance(self.service, ServiceConfig):
            raise TypeError(
                f"service must be a ServiceConfig or None, "
                f"got {type(self.service).__name__}"
            )
        from repro.backend import BACKEND_NAMES, SUPPORTED_DTYPES

        if self.backend not in BACKEND_NAMES + ("auto",):
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES + ('auto',)}, "
                f"got {self.backend!r}"
            )
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {SUPPORTED_DTYPES}, got {self.dtype!r}"
            )

    # ------------------------------------------------------------- utilities

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """Return a copy with selected fields replaced (re-validated)."""
        return replace(self, **kwargs)

    @property
    def configuration(self) -> Tuple[str, str]:
        """The (dataset, activation) pair, as used by the paper's tables."""
        return (self.dataset, self.activation)

    @property
    def is_paper_ideal(self) -> bool:
        """True when the hardware/defence stack matches the paper's ideal setup."""
        return (
            self.device == "ideal"
            and self.device_read_noise is None
            and self.mapping_scheme == MappingScheme.MIN_POWER.value
            and self.dac_bits is None
            and self.adc_bits is None
            and self.nonidealities.is_ideal
            and self.measurement_noise == 0.0
            and self.probe_adc_bits is None
            and self.defense is None
            and (self.sharding is None or self.sharding.is_trivial)
            and self.service is None
            and self.backend == "numpy"
            and self.dtype == "float64"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (for result metadata)."""
        payload: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, NonidealityConfig):
                value = {f.name: getattr(value, f.name) for f in fields(value)}
            elif isinstance(value, (ShardingSpec, ServiceConfig)):
                value = value.to_dict()
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (nested configs are reconstructed).

        Unknown keys are rejected (same contract as
        :meth:`ServiceConfig.from_dict`): a typo'd knob in a serialised
        scenario must fail loudly, not be silently dropped.
        """
        kwargs = dict(payload)
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        nonidealities = kwargs.get("nonidealities")
        if isinstance(nonidealities, dict):
            kwargs["nonidealities"] = NonidealityConfig(**nonidealities)
        # Dict-form sharding (including wire-physics knobs) is coerced by
        # ``__post_init__`` itself, so serialised payloads and literal specs
        # go through one validation path.
        service = kwargs.get("service")
        if isinstance(service, dict):
            kwargs["service"] = ServiceConfig.from_dict(service)
        return cls(**kwargs)

    # -------------------------------------------------------------- builders

    def build_victim(self, dataset, scale: ExperimentScale, *, random_state: int):
        """Train the victim model this scenario prescribes.

        Returns a :class:`~repro.experiments.runner.TrainedModel`.  Training-
        time defences are applied here; hardware knobs only affect
        :meth:`build_accelerator`.
        """
        from repro.experiments.runner import TrainedModel, prepare_model

        if self.defense == "norm-regularizer":
            from repro.defenses.norm_balancing import (
                ColumnNormRegularizer,
                train_with_norm_balancing,
            )

            network = train_with_norm_balancing(
                dataset,
                output=self.activation,
                regularizer=ColumnNormRegularizer(self.defense_strength),
                epochs=scale.train_epochs,
                random_state=random_state,
            )
            return TrainedModel(
                network=network,
                dataset=dataset,
                output=self.activation,
                test_accuracy=accuracy(
                    network.predict(dataset.test_inputs), dataset.test_targets
                ),
                train_accuracy=accuracy(
                    network.predict(dataset.train_inputs), dataset.train_targets
                ),
            )

        model = prepare_model(dataset, self.activation, scale, random_state=random_state)
        if self.defense == "rebalance":
            from repro.defenses.norm_balancing import rebalance_column_norms

            blend = min(self.defense_strength, 1.0)
            rebalance_column_norms(model.network, blend=blend)
            model.test_accuracy = accuracy(
                model.network.predict(dataset.test_inputs), dataset.test_targets
            )
            model.train_accuracy = accuracy(
                model.network.predict(dataset.train_inputs), dataset.train_targets
            )
        return model

    def build_accelerator(self, network, *, random_state: int):
        """Map a trained network onto the crossbar hardware this scenario describes.

        Returns the attack target: a :class:`CrossbarAccelerator`, wrapped in a
        :class:`PowerNoiseDefense` when the inference-time defence is enabled.
        The paper-ideal scenario passes all-``None`` component arguments so the
        accelerator construction is byte-identical to the legacy pipelines.
        """
        device = _DEVICES[self.device]
        if self.device_read_noise is not None:
            device = replace(device, read_noise=self.device_read_noise)
        mapping = None
        if (
            self.device != "ideal"
            or self.device_read_noise is not None
            or self.mapping_scheme != MappingScheme.MIN_POWER.value
        ):
            mapping = ConductanceMapping(
                device=device, scheme=MappingScheme(self.mapping_scheme)
            )
        nonidealities = None if self.nonidealities.is_ideal else self.nonidealities
        dac = DAC(self.dac_bits) if self.dac_bits is not None else None
        adc = ADC(self.adc_bits) if self.adc_bits is not None else None
        accelerator = CrossbarAccelerator(
            network,
            mapping=mapping,
            nonidealities=nonidealities,
            dac=dac,
            adc=adc,
            sharding=self.sharding,
            random_state=random_state,
            backend=self.backend,
            dtype=self.dtype,
        )
        if self.defense == "power-noise":
            return PowerNoiseDefense(
                accelerator,
                dummy_current_scale=self.defense_strength,
                random_state=np.random.default_rng([int(random_state) & 0xFFFFFFFF, 0xD3F]),
            )
        return accelerator

    def build_oracle(
        self,
        target,
        *,
        random_state: int,
        output_mode: str = "raw",
        expose_power: bool = True,
        expose_per_tile_power: bool = False,
    ):
        """The attacker's query interface to ``target``.

        Builds an :class:`~repro.attacks.oracle.Oracle` with this scenario's
        instrument noise; when :attr:`service` is set, wraps it in a
        :class:`~repro.service.facade.BatchingOracle` so queries are
        coalesced by the async service (the caller should ``close()`` the
        facade, or use it as a context manager).
        """
        from repro.attacks.oracle import Oracle

        kwargs: Dict[str, object] = {}
        if self.measurement_noise > 0.0:
            kwargs["power_noise_std"] = self.measurement_noise
            kwargs["random_state"] = np.random.default_rng(
                [int(random_state) & 0xFFFFFFFF, 0x0AC]
            )
        oracle = Oracle(
            target,
            output_mode=output_mode,
            expose_power=expose_power,
            expose_per_tile_power=expose_per_tile_power,
            **kwargs,
        )
        if self.service is None:
            return oracle
        from repro.service import BatchingOracle

        return BatchingOracle(oracle, self.service)

    def build_prober(self, target, n_features: int, *, random_state: int) -> ColumnNormProber:
        """The attacker's probing stack against ``target``.

        The paper-ideal scenario constructs ``PowerMeasurement(target)`` with
        default arguments, matching the legacy pipelines exactly.
        """
        kwargs: Dict[str, object] = {}
        if self.measurement_noise > 0.0:
            kwargs["noise_std"] = self.measurement_noise
            kwargs["random_state"] = np.random.default_rng(
                [int(random_state) & 0xFFFFFFFF, 0xA7C]
            )
        if self.probe_adc_bits is not None:
            kwargs["quantization_bits"] = self.probe_adc_bits
        measurement = PowerMeasurement(target, **kwargs)
        return ColumnNormProber(measurement, n_features)


def _paper_scenario(dataset: str, activation: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"paper/{dataset.split('-')[0]}-{activation}",
        dataset=dataset,
        activation=activation,
        description=f"Paper configuration: ideal crossbar, {dataset}, {activation} output",
    )


#: The paper's four (dataset, activation) cells as scenario presets, in the
#: order the tables report them.
PAPER_SCENARIOS: Tuple[ScenarioSpec, ...] = tuple(
    _paper_scenario(dataset, activation) for dataset, activation in PAPER_CONFIGURATIONS
)


#: All named scenario presets, keyed by :attr:`ScenarioSpec.name`.
SCENARIOS: Dict[str, ScenarioSpec] = {spec.name: spec for spec in PAPER_SCENARIOS}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a named scenario preset (duplicate names are rejected)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


register_scenario(
    ScenarioSpec(
        name="noisy-device",
        dataset="mnist-like",
        activation="softmax",
        device="reram",
        description="ReRAM device with programming/read noise on an MNIST softmax victim",
    )
)
register_scenario(
    ScenarioSpec(
        name="quantized-adc",
        dataset="mnist-like",
        activation="softmax",
        dac_bits=8,
        adc_bits=6,
        description="8-bit DAC / 6-bit ADC converters between the digital and analogue domains",
    )
)
register_scenario(
    ScenarioSpec(
        name="norm-balanced-defense",
        dataset="mnist-like",
        activation="softmax",
        defense="norm-regularizer",
        defense_strength=0.05,
        description="Victim trained with the column-norm variance penalty (training-time defence)",
    )
)
register_scenario(
    ScenarioSpec(
        name="high-read-noise",
        dataset="mnist-like",
        activation="softmax",
        nonidealities=NonidealityConfig(current_measurement_noise=0.10),
        measurement_noise=0.05,
        description="10% current-measurement noise on the rail plus 5% attacker instrument noise",
    )
)
register_scenario(
    ScenarioSpec(
        name="power-noise-defense",
        dataset="mnist-like",
        activation="softmax",
        defense="power-noise",
        defense_strength=0.5,
        description="Randomised dummy current draw at inference time (inference-time defence)",
    )
)
register_scenario(
    ScenarioSpec(
        name="wired-crossbar",
        dataset="mnist-like",
        activation="softmax",
        nonidealities=NonidealityConfig(wire_resistance_ohm=WIRED_CROSSBAR_OHM),
        measurement_noise=WIRED_CROSSBAR_PROBE_NOISE,
        description=(
            "Finite row/column wire resistance (2-D IR drop) plus attacker "
            "instrument noise — the base of the security-vs-geometry sweep"
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="balanced-mapping",
        dataset="mnist-like",
        activation="softmax",
        mapping_scheme="balanced",
        description="Balanced conductance mapping (hardware-level defence against the side channel)",
    )
)
# Multi-tile placement presets: same victim and ideal hardware as the paper
# configuration, with each layer sharded across a grid of physical tiles so
# Table 1 / Figure 5 style experiments can sweep tile geometry.  The grid
# shapes live in config.SHARD_PRESET_GEOMETRIES.
for _name, (_rows, _cols, _reduction) in SHARD_PRESET_GEOMETRIES.items():
    register_scenario(
        ScenarioSpec(
            name=_name,
            dataset="mnist-like",
            activation="softmax",
            sharding=ShardingSpec(
                row_shards=_rows, col_shards=_cols, reduction=_reduction
            ),
            description=(
                f"Layers sharded across a {_rows}x{_cols} physical tile grid "
                f"({_reduction} partial-sum reduction)"
            ),
        )
    )


# Service-fronted presets: the same physics as their base preset, with
# attacker queries driven through the async coalescing query service.  The
# batching policies live in config.SERVICE_PRESET_CONFIGS.
for _name, (_base, _max_batch, _max_wait_ms) in SERVICE_PRESET_CONFIGS.items():
    _base_spec = SCENARIOS[_base]
    register_scenario(
        _base_spec.with_overrides(
            name=_name,
            service=ServiceConfig(max_batch=_max_batch, max_wait_ms=_max_wait_ms),
            description=(
                f"{_base_spec.description or _base} with queries coalesced by "
                f"the async service (max_batch={_max_batch}, "
                f"max_wait_ms={_max_wait_ms:g})"
            ),
        )
    )


# Multi-tenant co-residency presets: the paper's MNIST softmax victim served
# through the coalescing service under each tick-placement / isolation
# policy.  These are what the cross-tenant-attack experiment compares; the
# policy data lives in config.TENANT_PRESET_CONFIGS.
for _name, (_placement, _max_batch, _noise_budget, _geometry) in (
    TENANT_PRESET_CONFIGS.items()
):
    _base_spec = SCENARIOS["paper/mnist-softmax"]
    register_scenario(
        _base_spec.with_overrides(
            name=_name,
            service=ServiceConfig(
                max_batch=_max_batch,
                # A generous hold keeps one drain round spanning a whole
                # two-tenant burst; dispatch-early still fires the moment
                # the offered load is fully coalesced, so idle latency is
                # unaffected.
                max_wait_ms=20.0,
                placement=_placement,
                noise_budget=_noise_budget,
            ),
            sharding=(
                None
                if _geometry is None
                else ShardingSpec(
                    row_shards=_geometry[0],
                    col_shards=_geometry[1],
                    reduction=_geometry[2],
                )
            ),
            description=(
                f"Multi-tenant coalescing with {_placement!r} tick placement"
                + (f", noise budget {_noise_budget:g}" if _noise_budget else "")
                + (
                    f", layers sharded {_geometry[0]}x{_geometry[1]} into "
                    "per-tenant tile banks"
                    if _geometry is not None
                    else ""
                )
            ),
        )
    )


def get_scenario(name) -> ScenarioSpec:
    """Look up a scenario preset by name (instances pass through)."""
    if isinstance(name, ScenarioSpec):
        return name
    key = str(name)
    if key not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {list_scenarios()}")
    return SCENARIOS[key]


def list_scenarios() -> List[str]:
    """Names of all registered scenario presets (paper presets first)."""
    paper = [spec.name for spec in PAPER_SCENARIOS]
    extra = sorted(name for name in SCENARIOS if name not in paper)
    return paper + extra


def resolve_scenarios(scenarios=None) -> Tuple[ScenarioSpec, ...]:
    """Normalise a scenario selection to a tuple of :class:`ScenarioSpec`.

    ``None`` selects the four paper configurations; otherwise each entry may
    be a preset name or a :class:`ScenarioSpec` instance.
    """
    if scenarios is None:
        return PAPER_SCENARIOS
    if isinstance(scenarios, (str, ScenarioSpec)):
        scenarios = [scenarios]
    return tuple(get_scenario(entry) for entry in scenarios)
