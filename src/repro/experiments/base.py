"""The unified experiment protocol: jobs, results, and the ``Experiment`` ABC.

Every paper artefact (Table I, Figures 3-5), every scenario sweep
(:mod:`repro.experiments.sweep`) and every future study follows one
protocol:

* :meth:`Experiment.build_jobs` expands a scale preset and a list of
  :class:`~repro.experiments.scenario.ScenarioSpec` into independent
  :class:`Job` descriptions (one per scenario x seed, typically);
* :meth:`Experiment.run_job` executes one job and returns a
  :class:`~repro.utils.results.RunResult` — it must be implemented so that
  ``run_job(job)`` is picklable (delegate to a module-level function), which
  lets every pipeline run its jobs on a
  :class:`~repro.experiments.runner.ParallelRunner` process pool;
* :meth:`Experiment.assemble` folds the ordered job results into an
  :class:`ExperimentResult`.

:meth:`Experiment.run` is the shared template: build jobs, execute them
through an :class:`~repro.executor.Executor` (serial, process pool, or the
distributed work queue — bit-identical under every backend, because every
job is seeded up front and results are assembled in submission order),
assemble.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale, resolve_scale
from repro.experiments.scenario import ScenarioSpec, resolve_scenarios
from repro.utils.results import RunResult, SweepResult


@dataclass(frozen=True)
class Job:
    """One independent unit of work in an experiment sweep.

    Jobs are frozen and fully self-describing (experiment name, scenario,
    scale, seed, plus experiment-specific ``params``), so they can be pickled
    to worker processes and replayed individually.
    """

    experiment: str
    scenario: ScenarioSpec
    scale: ExperimentScale
    seed: int
    run_index: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one entry of :attr:`params`."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def label(self) -> str:
        """Human-readable identifier used in logs and result names."""
        extras = "".join(f"/{value}" for _, value in self.params)
        return f"{self.experiment}/{self.scenario.name}{extras}/run{self.run_index}"


@dataclass
class ExperimentResult:
    """The assembled outcome of one experiment at one scale.

    Attributes
    ----------
    experiment:
        Registered experiment name.
    scale_name:
        The :class:`ExperimentScale` preset the sweep ran at.
    scenarios:
        Names of the scenarios covered, in execution order.
    sweep:
        Every per-job :class:`RunResult`, in job order.
    summary:
        Experiment-specific aggregated values (JSON-serialisable).
    """

    experiment: str
    scale_name: str
    scenarios: List[str] = field(default_factory=list)
    sweep: SweepResult = field(default_factory=lambda: SweepResult(name="sweep"))
    summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "scale_name": self.scale_name,
            "scenarios": list(self.scenarios),
            "sweep": self.sweep.to_dict(),
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Reconstruct an :class:`ExperimentResult` written by :meth:`to_dict`."""
        return cls(
            experiment=str(payload["experiment"]),
            scale_name=str(payload["scale_name"]),
            scenarios=list(payload.get("scenarios", [])),
            sweep=SweepResult.from_dict(payload.get("sweep", {"name": "sweep"})),
            summary=dict(payload.get("summary", {})),
        )


class Experiment(ABC):
    """Protocol every experiment pipeline implements.

    Subclasses set :attr:`name` (the registry key) and :attr:`description`,
    and implement the three hooks below.  ``run_job`` implementations must
    delegate to module-level functions so process pools can pickle the work.
    """

    #: Registry key; also the prefix of result names.
    name: str = ""
    #: One-line summary shown by ``python -m repro.experiments --list``.
    description: str = ""

    def registration_fingerprint(self):
        """Identity the registry compares when a name is registered twice.

        Equal fingerprints make re-registration a benign no-op (the same
        module imported through the package and as ``__main__``); different
        fingerprints under one name are a conflict.  The default — the class
        qualname — suits one-class-per-name experiments; parameterised
        experiment classes (several instances of one class under different
        configurations, e.g. :class:`~repro.experiments.sweep.SweepExperiment`)
        must fold their configuration in.
        """
        return type(self).__qualname__

    # ------------------------------------------------------------- protocol

    def build_jobs(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        *,
        base_seed: int = 0,
    ) -> List[Job]:
        """Expand a scale and scenario list into independent jobs.

        The default expansion is the common scenario x seed grid (seeds
        derived once via :func:`seeds_for_runs`, shared by every scenario,
        exactly like the historical ``run_multi_seed`` path); experiments
        with a different job shape override this.  Overrides may accept
        extra keyword options (forwarded from :meth:`run`); unknown options
        raise :class:`TypeError` rather than being silently ignored.
        """
        from repro.utils.rng import seeds_for_runs

        seeds = seeds_for_runs(base_seed, scale.n_runs)
        return [
            Job(
                experiment=self.name,
                scenario=scenario,
                scale=scale,
                seed=seed,
                run_index=run_index,
            )
            for scenario in scenarios
            for run_index, seed in enumerate(seeds)
        ]

    @staticmethod
    @abstractmethod
    def run_job(job: Job) -> RunResult:
        """Execute one job (must be picklable: delegate to a module function)."""

    @abstractmethod
    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        """Fold ordered job results into an :class:`ExperimentResult`."""

    def format_result(self, result: ExperimentResult) -> str:
        """Render the assembled result as the paper-style text report."""
        return f"{self.name}: {len(result.sweep)} runs at scale={result.scale_name}"

    # ------------------------------------------------------------- template

    def accepted_run_options(self) -> List[str]:
        """Names of the extra keyword options this experiment's
        :meth:`build_jobs` accepts (empty for the default grid expansion;
        ``["**anything"]`` when the override takes ``**kwargs``).

        The first two positional slots are the ``scale`` / ``scenarios``
        arguments of the protocol; anything after them that can be passed
        by keyword — ordinary defaulted parameters as well as
        keyword-only ones — is an option (``base_seed`` excepted, since
        :meth:`run` always forwards it explicitly).
        """
        signature = inspect.signature(self.build_jobs)
        accepted: List[str] = []
        positional_slots = 0
        for name, parameter in signature.parameters.items():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return ["**anything"]
            if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
                continue
            if parameter.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                if positional_slots < 2:
                    positional_slots += 1  # the scale / scenarios slots
                    continue
                if (
                    parameter.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
                    and name != "base_seed"
                ):
                    accepted.append(name)
                continue
            if parameter.kind is inspect.Parameter.KEYWORD_ONLY and name != "base_seed":
                accepted.append(name)
        return accepted

    def _validate_run_options(self, options: Mapping[str, Any]) -> None:
        """Reject unknown ``run(**options)`` at the boundary with a named
        error, instead of a bare ``TypeError`` from deep inside the
        template."""
        accepted = self.accepted_run_options()
        if accepted == ["**anything"]:
            return
        unknown = sorted(set(options) - set(accepted))
        if unknown:
            detail = (
                f"accepted options: {sorted(accepted)}"
                if accepted
                else "this experiment accepts no extra options"
            )
            raise ValueError(
                f"unknown run() options {unknown} for experiment "
                f"{self.name!r}; {detail}"
            )

    def run(
        self,
        scale="bench",
        *,
        scenarios=None,
        executor=None,
        runner=None,
        base_seed: int = 0,
        **options,
    ) -> ExperimentResult:
        """Build, execute, and assemble the full sweep.

        Parameters
        ----------
        scale:
            Preset name or :class:`ExperimentScale`.
        scenarios:
            Scenario names / :class:`ScenarioSpec` instances; ``None`` selects
            the four paper configurations.
        executor:
            How jobs execute: an :class:`~repro.executor.Executor` instance,
            a name (``"serial"``, ``"process"``, ``"thread"``, ``"queue"``),
            or ``None`` for the in-process serial path.  Results are
            bit-identical under every backend (every job is seeded up front,
            results are collected in job order).
        runner:
            Deprecated alias: a
            :class:`~repro.experiments.runner.ParallelRunner`, mapped onto a
            :class:`~repro.executor.PoolExecutor`.  Pass ``executor=``
            instead.
        base_seed:
            Root of the deterministic per-job seed derivation.
        options:
            Experiment-specific knobs forwarded to :meth:`build_jobs`;
            unknown names raise :class:`ValueError` here, naming the
            experiment and its accepted options.
        """
        from repro.executor import coerce_executor

        executor = coerce_executor(executor, runner, owner=f"{self.name}.run()")
        self._validate_run_options(options)
        scale = resolve_scale(scale)
        scenarios = resolve_scenarios(scenarios)
        jobs = self.build_jobs(scale, scenarios, base_seed=base_seed, **options)
        results = execute_jobs(jobs, executor=executor, run_job=self.run_job)
        assembled = self.assemble(scale, scenarios, jobs, results)
        assembled.summary.setdefault("base_seed", base_seed)
        return assembled


def _annotate(result: RunResult, job: Job) -> RunResult:
    """Stamp the job's identity onto its result (idempotent)."""
    result.metadata.setdefault("experiment", job.experiment)
    result.metadata.setdefault("scenario", job.scenario.name)
    result.metadata.setdefault("seed", job.seed)
    result.metadata.setdefault("run_index", job.run_index)
    return result


def _run_annotated(run_job, job: Job) -> RunResult:
    """Worker-side wrapper around an experiment's picklable ``run_job``."""
    return _annotate(run_job(job), job)


def _execute_job(job: Job) -> RunResult:
    """Registry-resolving job trampoline (serial path and replay tooling).

    Resolves the experiment by name through the registry, which lazily
    imports the built-in experiment modules — sufficient for the four paper
    pipelines anywhere, and for any experiment on the local process.
    """
    from repro.experiments.registry import get_experiment

    return _annotate(get_experiment(job.experiment).run_job(job), job)


def execute_jobs(
    jobs: Sequence[Job],
    *,
    executor=None,
    runner=None,
    run_job=None,
    on_progress=None,
    cancel=None,
) -> List[RunResult]:
    """Run every job through an :class:`~repro.executor.Executor`, in order.

    ``executor`` is an :class:`~repro.executor.Executor` instance, a name
    understood by :func:`~repro.executor.resolve_executor` (``"serial"``,
    ``"process"``, ``"thread"``, ``"queue"``), or ``None`` for the
    in-process serial path.  ``runner`` is the deprecated spelling (a
    :class:`~repro.experiments.runner.ParallelRunner`), mapped onto a
    :class:`~repro.executor.PoolExecutor`.

    When ``run_job`` (a module-level picklable function) is given, workers
    receive it directly with each job, so user-registered experiments work
    under any start method (``fork``/``spawn``/``forkserver``) and on
    work-queue workers, without the worker needing to re-import and
    re-register them; without it, jobs are resolved by name through the
    registry.  ``on_progress`` / ``cancel`` are forwarded to the executor
    (see :mod:`repro.executor.base`).
    """
    from repro.executor import coerce_executor, resolve_executor

    executor = coerce_executor(executor, runner, owner="execute_jobs()")
    executor = resolve_executor(executor)
    return executor.submit_jobs(
        jobs, run_job=run_job, on_progress=on_progress, cancel=cancel
    )


def group_results_by_scenario(
    jobs: Sequence[Job], results: Sequence[RunResult]
) -> List[Tuple[ScenarioSpec, List[RunResult]]]:
    """Group ordered job results by their scenario *object*, single pass.

    Keyed by the frozen :class:`ScenarioSpec` value (not its name), so two
    distinct specs that happen to share a name stay separate; groups appear
    in first-job order and each result lands in exactly one group.
    """
    groups: Dict[ScenarioSpec, List[RunResult]] = {}
    order: List[ScenarioSpec] = []
    for job, result in zip(jobs, results):
        if job.scenario not in groups:
            groups[job.scenario] = []
            order.append(job.scenario)
        groups[job.scenario].append(result)
    return [(scenario, groups[scenario]) for scenario in order]
