"""Figure 3 — sensitivity maps versus weight-column 1-norm maps.

For each scenario (by default the paper's four configurations), the pipeline
reproduces the data behind the paper's eight panels: the test-set-averaged
sensitivity ``|∂L/∂u_j|`` as an image next to the column 1-norms of the
weight matrix as an image (using only the first colour channel for CIFAR-10),
and reports three summary numbers per configuration: the correlation between
the two maps, and the spatial smoothness of each map (to quantify the
"gradually changing" vs "rapidly changing" observation in Section III).

The pipeline is a registered :class:`~repro.experiments.base.Experiment`
(``"figure3"``): each scenario is one picklable job (the figure uses a single
deterministic seed), so a multi-scenario sweep runs on a
:class:`~repro.experiments.runner.ParallelRunner` process pool with results
bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.correlation import pearson_correlation
from repro.analysis.sensitivity import SensitivityMaps, sensitivity_norm_maps, spatial_smoothness
from repro.experiments.base import Experiment, ExperimentResult, Job
from repro.experiments.compat import deprecated_formatter, legacy_collision, run_legacy
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register
from repro.experiments.reporting import format_table, has_non_paper_scenarios
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import ScenarioSpec
from repro.utils.results import RunResult


#: Figure 3 panel labels in the paper, keyed by (dataset, activation).
PANEL_LABELS: Dict[Tuple[str, str], Tuple[str, str]] = {
    ("mnist-like", "linear"): ("a", "b"),
    ("mnist-like", "softmax"): ("c", "d"),
    ("cifar-like", "linear"): ("e", "f"),
    ("cifar-like", "softmax"): ("g", "h"),
}

SUMMARY_KEYS = (
    "map_correlation",
    "sensitivity_smoothness",
    "norm_smoothness",
    "victim_test_accuracy",
)


@dataclass
class Figure3Result:
    """Maps and summary statistics for all panels."""

    scale_name: str
    maps: Dict[Tuple[str, str], SensitivityMaps] = field(default_factory=dict)
    summaries: Dict[Tuple[str, str], Dict[str, float]] = field(default_factory=dict)

    def panel(self, dataset: str, activation: str) -> SensitivityMaps:
        """The map pair for one configuration."""
        return self.maps[(dataset, activation)]


def _run_figure3_job(job: Job) -> RunResult:
    """Produce the map pair and summary statistics for one scenario."""
    scenario, scale, seed = job.scenario, job.scale, job.seed
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)

    target = scenario.build_accelerator(model.network, random_state=seed)
    prober = scenario.build_prober(target, dataset.n_features, random_state=seed)
    leaked_norms = prober.probe_all().column_sums

    maps = sensitivity_norm_maps(
        model.network,
        dataset.test_inputs,
        dataset.test_targets,
        dataset.image_shape,
        channel=0 if len(dataset.image_shape) == 3 else None,
        column_norms=leaked_norms,
    )
    sens_flat, norm_flat = maps.flattened()
    result = RunResult(
        name=f"figure3/{scenario.dataset}/{scenario.activation}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "map_shape": list(maps.map_shape),
            "channel": maps.channel,
        },
    )
    result.add_array("sensitivity_map", maps.sensitivity)
    result.add_array("norm_map", maps.column_norms)
    result.add_metric("map_correlation", pearson_correlation(sens_flat, norm_flat))
    result.add_metric("sensitivity_smoothness", spatial_smoothness(maps.sensitivity))
    result.add_metric("norm_smoothness", spatial_smoothness(maps.column_norms))
    result.add_metric("victim_test_accuracy", model.test_accuracy)
    return result


class Figure3Experiment(Experiment):
    """Registered pipeline reproducing the data behind Figure 3."""

    name = "figure3"
    description = "Mean-sensitivity vs 1-norm maps and their smoothness (Figure 3)"

    def build_jobs(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        *,
        base_seed: int = 0,
    ) -> List[Job]:
        return [
            Job(
                experiment=self.name,
                scenario=scenario,
                scale=scale,
                seed=base_seed,
                run_index=0,
            )
            for scenario in scenarios
        ]

    run_job = staticmethod(_run_figure3_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(
            experiment=self.name,
            scale_name=scale.name,
            scenarios=[scenario.name for scenario in scenarios],
        )
        panels = []
        for job, result in zip(jobs, results):
            assembled.sweep.add(result)
            panel = {
                "scenario": job.scenario.name,
                "dataset": job.scenario.dataset,
                "activation": job.scenario.activation,
            }
            panel.update({key: result.metrics[key] for key in SUMMARY_KEYS})
            panels.append(panel)
        assembled.summary["panels"] = panels
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        """Render the per-panel summary (scenario-keyed, collision-free)."""
        panels = result.summary.get("panels", [])
        with_scenario = has_non_paper_scenarios(panels)
        headers = (["Scenario"] if with_scenario else ["Panels"]) + [
            "Dataset",
            "Activation",
            "Corr(sens, 1-norm)",
            "Smoothness(sens)",
            "Smoothness(1-norm)",
            "Victim acc",
        ]
        rows = []
        for panel in panels:
            key = (panel["dataset"], panel["activation"])
            labels = PANEL_LABELS.get(key, ("?", "?"))
            first = (
                [panel.get("scenario", "-")]
                if with_scenario
                else [f"({labels[0]},{labels[1]})"]
            )
            rows.append(
                first
                + [
                    panel["dataset"],
                    panel["activation"],
                    float(panel["map_correlation"]),
                    float(panel["sensitivity_smoothness"]),
                    float(panel["norm_smoothness"]),
                    float(panel["victim_test_accuracy"]),
                ]
            )
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 3 reproduction (scale={result.scale_name}) — correlation between "
                "mean-sensitivity and 1-norm maps; lower smoothness = smoother map"
            ),
            float_precision=3,
        )


register(Figure3Experiment)


def _legacy_result(result: ExperimentResult) -> Figure3Result:
    """Adapt an :class:`ExperimentResult` to the historical result type.

    The legacy :class:`Figure3Result` is keyed by (dataset, activation), so
    scenario selections where two scenarios share that pair cannot be
    represented — they raise rather than silently overwriting each other.
    """
    output = Figure3Result(scale_name=result.scale_name)
    for run in result.sweep:
        key = (run.metadata.get("dataset"), run.metadata.get("activation"))
        if key in output.maps:
            raise legacy_collision("figure3", key)
        output.maps[key] = SensitivityMaps(
            sensitivity=run.arrays["sensitivity_map"],
            column_norms=run.arrays["norm_map"],
            map_shape=tuple(run.metadata.get("map_shape", run.arrays["norm_map"].shape)),
            channel=run.metadata.get("channel"),
        )
        output.summaries[key] = {key_: run.metrics[key_] for key_ in SUMMARY_KEYS}
    return output


def run_figure3(
    scale="bench", *, base_seed: int = 0, runner=None, scenarios=None
) -> Figure3Result:
    """DEPRECATED: reproduce the data behind Figure 3 (legacy-shaped result).

    Use ``get_experiment("figure3").run(...)`` for scenario-keyed results;
    this wrapper delegates through :func:`repro.experiments.compat.run_legacy`
    and emits a :class:`DeprecationWarning`.
    """
    return run_legacy(
        "figure3",
        _legacy_result,
        wrapper="run_figure3()",
        scale=scale,
        scenarios=scenarios,
        runner=runner,
        base_seed=base_seed,
    )


def _format_figure3(result: Figure3Result) -> str:
    """Render the per-panel summary statistics as a table."""
    headers = [
        "Panels",
        "Dataset",
        "Activation",
        "Corr(sens, 1-norm)",
        "Smoothness(sens)",
        "Smoothness(1-norm)",
        "Victim acc",
    ]
    rows = []
    for (dataset, activation), summary in result.summaries.items():
        panels = PANEL_LABELS.get((dataset, activation), ("?", "?"))
        rows.append(
            [
                f"({panels[0]},{panels[1]})",
                dataset,
                activation,
                float(summary["map_correlation"]),
                float(summary["sensitivity_smoothness"]),
                float(summary["norm_smoothness"]),
                float(summary["victim_test_accuracy"]),
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 3 reproduction (scale={result.scale_name}) — correlation between "
            "mean-sensitivity and 1-norm maps; lower smoothness = smoother map"
        ),
        float_precision=3,
    )


#: DEPRECATED public spelling of :func:`_format_figure3`.
format_figure3 = deprecated_formatter(
    _format_figure3, "get_experiment('figure3').format_result(...)"
)


def main() -> None:  # pragma: no cover - console entry point
    """Run the Figure 3 reproduction at bench scale and print the summary."""
    result = _legacy_result(Figure3Experiment().run("bench"))
    print(_format_figure3(result))


if __name__ == "__main__":  # pragma: no cover
    main()
