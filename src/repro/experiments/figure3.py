"""Figure 3 — sensitivity maps versus weight-column 1-norm maps.

For each of the four configurations, the paper shows the test-set-averaged
sensitivity ``|∂L/∂u_j|`` as an image next to the column 1-norms of the
weight matrix as an image (using only the first colour channel for CIFAR-10),
and observes a visible correlation — stronger and spatially smoother for
MNIST than for CIFAR-10.

The pipeline below reproduces the data behind all eight panels and reports
three summary numbers per configuration: the correlation between the two
maps, and the spatial smoothness of each map (to quantify the
"gradually changing" vs "rapidly changing" observation in Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.analysis.correlation import pearson_correlation
from repro.analysis.sensitivity import SensitivityMaps, sensitivity_norm_maps, spatial_smoothness
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.experiments.config import PAPER_CONFIGURATIONS, resolve_scale
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_dataset, prepare_model
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber


#: Figure 3 panel labels in the paper, keyed by (dataset, activation).
PANEL_LABELS: Dict[Tuple[str, str], Tuple[str, str]] = {
    ("mnist-like", "linear"): ("a", "b"),
    ("mnist-like", "softmax"): ("c", "d"),
    ("cifar-like", "linear"): ("e", "f"),
    ("cifar-like", "softmax"): ("g", "h"),
}


@dataclass
class Figure3Result:
    """Maps and summary statistics for all eight panels."""

    scale_name: str
    maps: Dict[Tuple[str, str], SensitivityMaps] = field(default_factory=dict)
    summaries: Dict[Tuple[str, str], Dict[str, float]] = field(default_factory=dict)

    def panel(self, dataset: str, activation: str) -> SensitivityMaps:
        """The map pair for one configuration."""
        return self.maps[(dataset, activation)]


def run_figure3(scale="bench", *, base_seed: int = 0) -> Figure3Result:
    """Reproduce the data behind Figure 3."""
    scale = resolve_scale(scale)
    result = Figure3Result(scale_name=scale.name)
    for dataset_name, activation in PAPER_CONFIGURATIONS:
        dataset = prepare_dataset(dataset_name, scale, random_state=base_seed)
        model = prepare_model(dataset, activation, scale, random_state=base_seed)

        accelerator = CrossbarAccelerator(model.network, random_state=base_seed)
        prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
        leaked_norms = prober.probe_all().column_sums

        maps = sensitivity_norm_maps(
            model.network,
            dataset.test_inputs,
            dataset.test_targets,
            dataset.image_shape,
            channel=0 if len(dataset.image_shape) == 3 else None,
            column_norms=leaked_norms,
        )
        sens_flat, norm_flat = maps.flattened()
        result.maps[(dataset_name, activation)] = maps
        result.summaries[(dataset_name, activation)] = {
            "map_correlation": pearson_correlation(sens_flat, norm_flat),
            "sensitivity_smoothness": spatial_smoothness(maps.sensitivity),
            "norm_smoothness": spatial_smoothness(maps.column_norms),
            "victim_test_accuracy": model.test_accuracy,
        }
    return result


def format_figure3(result: Figure3Result) -> str:
    """Render the per-panel summary statistics as a table."""
    headers = [
        "Panels",
        "Dataset",
        "Activation",
        "Corr(sens, 1-norm)",
        "Smoothness(sens)",
        "Smoothness(1-norm)",
        "Victim acc",
    ]
    rows = []
    for (dataset, activation), summary in result.summaries.items():
        panels = PANEL_LABELS[(dataset, activation)]
        rows.append(
            [
                f"({panels[0]},{panels[1]})",
                dataset,
                activation,
                float(summary["map_correlation"]),
                float(summary["sensitivity_smoothness"]),
                float(summary["norm_smoothness"]),
                float(summary["victim_test_accuracy"]),
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 3 reproduction (scale={result.scale_name}) — correlation between "
            "mean-sensitivity and 1-norm maps; lower smoothness = smoother map"
        ),
        float_precision=3,
    )


def main() -> None:  # pragma: no cover - console entry point
    """Run the Figure 3 reproduction at bench scale and print the summary."""
    result = run_figure3("bench")
    print(format_figure3(result))


if __name__ == "__main__":  # pragma: no cover
    main()
