"""The ``service-attack`` experiment: attacks driven through the query service.

Demonstrates the async coalescing query service end to end on real scenario
hardware: for every scenario x seed job the attacker mounts the paper's
column-norm probing attack as *concurrent single-row queries* against a
:class:`~repro.service.coalescer.QueryService` fronting the victim oracle,
and the same request sequence is replayed through the direct synchronous path
(same per-request seeds, an identically-built victim).  The job records

* ``leakage_correlation`` — the attack still works through the service;
* ``service_matches_direct`` — serviced responses are **bit-identical** to
  the direct path (1.0/0.0);
* ``coalescing_factor`` / ``mean_tick_rows`` — how many requests each fused
  traversal amortised;
* ``query_accounting_ok`` — both paths charged exactly the same number of
  queries.

The default scenario selection is the ``service-*`` presets
(:data:`~repro.experiments.config.SERVICE_PRESET_CONFIGS`); explicit
scenarios without a service knob run under a default
:class:`~repro.service.config.ServiceConfig`.  Jobs submit from a single
event loop in sequence-number order, so results are deterministic and the
experiment is process-pool-safe like every other registered pipeline.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Sequence

import numpy as np

from repro.defenses.evaluation import leakage_correlation
from repro.experiments.base import Experiment, ExperimentResult, Job
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import SCENARIOS, ScenarioSpec
from repro.service import QueryService, ServiceConfig
from repro.utils.results import RunResult


async def _serviced_probe(oracle, basis: np.ndarray, config: ServiceConfig):
    """All basis probes as concurrent single-row service requests."""
    async with QueryService(oracle, config) as service:
        responses = await asyncio.gather(
            *(service.submit(row[np.newaxis, :]) for row in basis)
        )
        seeds = [service.seeds_for(i, 1) for i in range(len(basis))]
        stats = service.stats.to_dict()
    return responses, seeds, stats


def _run_service_job(job: Job) -> RunResult:
    scenario, scale, seed = job.scenario, job.scale, job.seed
    config = scenario.service if scenario.service is not None else ServiceConfig()
    direct_spec = scenario.with_overrides(service=None)

    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)
    # Two identically-built victims: one behind the service, one direct.
    target_service = scenario.build_accelerator(model.network, random_state=seed)
    target_direct = scenario.build_accelerator(model.network, random_state=seed)
    oracle_service = direct_spec.build_oracle(target_service, random_state=seed)
    oracle_direct = direct_spec.build_oracle(target_direct, random_state=seed)

    basis = np.eye(dataset.n_features)
    responses, seeds, stats = asyncio.run(
        _serviced_probe(oracle_service, basis, config)
    )
    serviced_power = np.array([float(r.power[0]) for r in responses])

    identical = True
    direct_power = np.empty(len(basis))
    for i, row in enumerate(basis):
        reference = oracle_direct.query(row[np.newaxis, :], seeds=seeds[i])
        direct_power[i] = float(reference.power[0])
        identical = identical and np.array_equal(
            responses[i].outputs, reference.outputs
        )
    identical = identical and np.array_equal(serviced_power, direct_power)

    leakage = leakage_correlation(
        target_direct, model.network, leaked_norms=serviced_power
    )

    result = RunResult(
        name=f"{job.experiment}/{scenario.name}/run{job.run_index}",
        metadata={
            "dataset": scenario.dataset,
            "activation": scenario.activation,
            "service": config.to_dict(),
            "n_requests": int(stats["n_requests"]),
            "n_ticks": int(stats["n_ticks"]),
        },
    )
    result.add_metric("leakage_correlation", leakage)
    result.add_metric("service_matches_direct", float(identical))
    result.add_metric("coalescing_factor", stats["coalescing_factor"])
    result.add_metric("mean_tick_rows", stats["mean_tick_rows"])
    result.add_metric(
        "query_accounting_ok",
        float(oracle_service.queries_used == oracle_direct.queries_used == len(basis)),
    )
    result.add_metric("clean_test_accuracy", model.test_accuracy)
    return result


@register
class ServiceAttackExperiment(Experiment):
    """Probing attack through the coalescing service, verified against direct."""

    name = "service-attack"
    description = (
        "Column-norm probing driven through the async coalescing query "
        "service; serviced responses verified bit-identical to the direct path"
    )

    def run(self, scale="bench", *, scenarios=None, **kwargs) -> ExperimentResult:
        """Default the selection to the ``service-*`` presets.

        Captured before the shared template turns ``None`` into the four
        paper configurations; explicit scenarios (service-configured or not)
        pass through and run under their own — or a default — policy.
        """
        if scenarios is None:
            scenarios = tuple(
                SCENARIOS[name]
                for name in SCENARIOS
                if SCENARIOS[name].service is not None
            )
        return super().run(scale, scenarios=scenarios, **kwargs)

    run_job = staticmethod(_run_service_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(experiment=self.name, scale_name=scale.name)
        per_scenario: Dict[str, List[RunResult]] = {}
        for job, result in zip(jobs, results):
            assembled.sweep.add(result)
            if job.scenario.name not in assembled.scenarios:
                assembled.scenarios.append(job.scenario.name)
            per_scenario.setdefault(job.scenario.name, []).append(result)

        rows = []
        for name, runs in per_scenario.items():
            rows.append(
                {
                    "scenario": name,
                    "leakage_mean": float(
                        np.mean([r.metrics["leakage_correlation"] for r in runs])
                    ),
                    "coalescing_factor_mean": float(
                        np.mean([r.metrics["coalescing_factor"] for r in runs])
                    ),
                    "all_bit_identical": bool(
                        all(r.metrics["service_matches_direct"] == 1.0 for r in runs)
                    ),
                    "accounting_ok": bool(
                        all(r.metrics["query_accounting_ok"] == 1.0 for r in runs)
                    ),
                }
            )
        assembled.summary["rows"] = rows
        assembled.summary["all_bit_identical"] = bool(
            all(row["all_bit_identical"] for row in rows)
        )
        assembled.summary["n_runs"] = scale.n_runs
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        lines = [
            f"{self.name} (scale={result.scale_name}, "
            f"{result.summary.get('n_runs', '?')} seeds per scenario)"
        ]
        for row in result.summary.get("rows", []):
            lines.append(
                f"  {row['scenario']:<24s} leakage={row['leakage_mean']:+.3f}  "
                f"coalescing={row['coalescing_factor_mean']:.1f}x  "
                f"bit-identical={'yes' if row['all_bit_identical'] else 'NO'}  "
                f"accounting={'ok' if row['accounting_ok'] else 'BROKEN'}"
            )
        return "\n".join(lines)
