"""Figure 4 — power-guided single-pixel attacks.

For each scenario (by default the paper's four configurations) the pipeline
plots test accuracy against attack strength (0-10) for five single-pixel
strategies: RP (random pixel, random sign), "+" (largest-1-norm pixel, add),
"−" (largest-1-norm pixel, subtract), RD (largest-1-norm pixel, random sign)
and Worst (white-box single-pixel FGSM).  The 1-norm information is obtained
by probing the power side channel of the simulated crossbar.

The expected qualitative ordering (reproduced and asserted by the tests) is
``Worst ≤ power-guided ≤ RP`` in accuracy — i.e. the power information makes
the attack substantially more effective than random, without reaching the
white-box bound.

The pipeline is a registered :class:`~repro.experiments.base.Experiment`
(``"figure4"``): each scenario x seed cell is one picklable job, so the whole
sweep runs on a :class:`~repro.experiments.runner.ParallelRunner` process
pool with results bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    Job,
    group_results_by_scenario,
)
from repro.experiments.compat import deprecated_formatter, legacy_collision, run_legacy
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register
from repro.experiments.reporting import format_series
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import ScenarioSpec
from repro.utils.results import RunResult, SweepResult

#: Figure 4 panel labels keyed by (dataset, activation).
PANEL_LABELS: Dict[Tuple[str, str], str] = {
    ("mnist-like", "linear"): "a",
    ("mnist-like", "softmax"): "b",
    ("cifar-like", "linear"): "c",
    ("cifar-like", "softmax"): "d",
}

STRATEGIES: Tuple[SinglePixelStrategy, ...] = (
    SinglePixelStrategy.RANDOM_PIXEL,
    SinglePixelStrategy.POWER_ADD,
    SinglePixelStrategy.POWER_SUBTRACT,
    SinglePixelStrategy.POWER_RANDOM,
    SinglePixelStrategy.WORST_CASE,
)


@dataclass
class Figure4Result:
    """Accuracy-vs-strength curves for every configuration and strategy."""

    scale_name: str
    attack_strengths: Tuple[float, ...]
    #: curves[(dataset, activation)][strategy.paper_label] -> accuracy list
    curves: Dict[Tuple[str, str], Dict[str, List[float]]] = field(default_factory=dict)
    sweeps: Dict[Tuple[str, str], SweepResult] = field(default_factory=dict)

    def curve(self, dataset: str, activation: str, strategy_label: str) -> List[float]:
        """One accuracy-vs-strength curve."""
        return self.curves[(dataset, activation)][strategy_label]


def _run_figure4_job(job: Job) -> RunResult:
    """Train a victim, probe its power channel, and run all five strategies."""
    scenario, scale, seed = job.scenario, job.scale, job.seed
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)

    target = scenario.build_accelerator(model.network, random_state=seed)
    prober = scenario.build_prober(target, dataset.n_features, random_state=seed)
    probe = prober.probe_all()
    leaked_norms = probe.column_sums

    result = RunResult(
        name=f"figure4/{scenario.dataset}/{scenario.activation}",
        metadata={"dataset": scenario.dataset, "activation": scenario.activation},
    )
    result.add_metric("clean_test_accuracy", model.test_accuracy)
    result.add_metric("probe_queries", probe.queries_used)

    for strategy in STRATEGIES:
        attack = SinglePixelAttack(
            strategy,
            column_norms=leaked_norms,
            network=model.network,
            queries_used=probe.queries_used if strategy.needs_power_information else 0,
            random_state=seed,
        )
        accuracies = [
            accuracy_under_attack(
                model.network,
                attack,
                dataset.test_inputs,
                dataset.test_targets,
                strength,
            )
            for strength in scale.attack_strengths
        ]
        result.add_array(strategy.paper_label, accuracies)
    return result


class Figure4Experiment(Experiment):
    """Registered pipeline reproducing the Figure 4 attack curves.

    Jobs are the default scenario x seed grid from the :class:`Experiment`
    base class.
    """

    name = "figure4"
    description = "Single-pixel attack accuracy vs strength, five strategies (Figure 4)"

    run_job = staticmethod(_run_figure4_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(
            experiment=self.name,
            scale_name=scale.name,
            scenarios=[scenario.name for scenario in scenarios],
        )
        assembled.summary["attack_strengths"] = [
            float(s) for s in scale.attack_strengths
        ]
        curves_by_scenario = []
        for scenario, runs in group_results_by_scenario(jobs, results):
            for result in runs:
                assembled.sweep.add(result)
            curves: Dict[str, List[float]] = {}
            for strategy in STRATEGIES:
                label = strategy.paper_label
                stacked = np.stack([run.arrays[label] for run in runs])
                curves[label] = stacked.mean(axis=0).tolist()
            curves_by_scenario.append(
                {
                    "scenario": scenario.name,
                    "dataset": scenario.dataset,
                    "activation": scenario.activation,
                    "curves": curves,
                }
            )
        assembled.summary["curves"] = curves_by_scenario
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        """Render one text panel per scenario (collision-free for variants)."""
        strengths = list(result.summary.get("attack_strengths", ()))
        sections = []
        for entry in result.summary.get("curves", []):
            key = (entry["dataset"], entry["activation"])
            panel = PANEL_LABELS.get(key, "?")
            sections.append(
                format_series(
                    "strength",
                    strengths,
                    entry["curves"],
                    title=(
                        f"Figure 4({panel}) reproduction — {entry['scenario']} "
                        f"({entry['dataset']}, {entry['activation']} output, "
                        f"scale={result.scale_name})"
                    ),
                )
            )
        return "\n\n".join(sections)


register(Figure4Experiment)


def _legacy_result(result: ExperimentResult) -> Figure4Result:
    """Adapt an :class:`ExperimentResult` to the historical result type.

    The legacy :class:`Figure4Result` is keyed by (dataset, activation);
    scenario selections where two scenarios share that pair cannot be
    represented and raise rather than silently overwriting each other.
    """
    output = Figure4Result(
        scale_name=result.scale_name,
        attack_strengths=tuple(result.summary.get("attack_strengths", ())),
    )
    for entry in result.summary.get("curves", []):
        key = (entry["dataset"], entry["activation"])
        if key in output.curves:
            raise legacy_collision("figure4", key)
        output.curves[key] = {
            label: list(curve) for label, curve in entry["curves"].items()
        }
    for run in result.sweep:
        key = (run.metadata.get("dataset"), run.metadata.get("activation"))
        if key not in output.sweeps:
            output.sweeps[key] = SweepResult(name=run.name)
        output.sweeps[key].add(run)
    return output


def run_figure4(
    scale="bench", *, base_seed: int = 0, runner=None, scenarios=None
) -> Figure4Result:
    """DEPRECATED: reproduce the Figure 4 curves (legacy-shaped result).

    Use ``get_experiment("figure4").run(...)`` for scenario-keyed results;
    this wrapper delegates through :func:`repro.experiments.compat.run_legacy`
    and emits a :class:`DeprecationWarning`.
    """
    return run_legacy(
        "figure4",
        _legacy_result,
        wrapper="run_figure4()",
        scale=scale,
        scenarios=scenarios,
        runner=runner,
        base_seed=base_seed,
    )


def _format_figure4(result: Figure4Result) -> str:
    """Render one text panel per configuration (accuracy vs attack strength)."""
    sections = []
    for (dataset, activation), curves in result.curves.items():
        panel = PANEL_LABELS.get((dataset, activation), "?")
        sections.append(
            format_series(
                "strength",
                list(result.attack_strengths),
                curves,
                title=(
                    f"Figure 4({panel}) reproduction — {dataset}, {activation} output "
                    f"(scale={result.scale_name})"
                ),
            )
        )
    return "\n\n".join(sections)


#: DEPRECATED public spelling of :func:`_format_figure4`.
format_figure4 = deprecated_formatter(
    _format_figure4, "get_experiment('figure4').format_result(...)"
)


def main() -> None:  # pragma: no cover - console entry point
    """Run the Figure 4 reproduction at bench scale and print the curves."""
    result = _legacy_result(Figure4Experiment().run("bench"))
    print(_format_figure4(result))


if __name__ == "__main__":  # pragma: no cover
    main()
