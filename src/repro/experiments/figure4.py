"""Figure 4 — power-guided single-pixel attacks.

For each of the four configurations the paper plots test accuracy against
attack strength (0-10) for five single-pixel strategies: RP (random pixel,
random sign), "+" (largest-1-norm pixel, add), "−" (largest-1-norm pixel,
subtract), RD (largest-1-norm pixel, random sign) and Worst (white-box
single-pixel FGSM).  The 1-norm information is obtained by probing the power
side channel of the simulated crossbar.

The expected qualitative ordering (reproduced and asserted by the tests) is
``Worst ≤ power-guided ≤ RP`` in accuracy — i.e. the power information makes
the attack substantially more effective than random, without reaching the
white-box bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.experiments.config import PAPER_CONFIGURATIONS, ExperimentScale, resolve_scale
from repro.experiments.reporting import format_series
from repro.experiments.runner import prepare_dataset, prepare_model, run_multi_seed
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.utils.results import RunResult, SweepResult

#: Figure 4 panel labels keyed by (dataset, activation).
PANEL_LABELS: Dict[Tuple[str, str], str] = {
    ("mnist-like", "linear"): "a",
    ("mnist-like", "softmax"): "b",
    ("cifar-like", "linear"): "c",
    ("cifar-like", "softmax"): "d",
}

STRATEGIES: Tuple[SinglePixelStrategy, ...] = (
    SinglePixelStrategy.RANDOM_PIXEL,
    SinglePixelStrategy.POWER_ADD,
    SinglePixelStrategy.POWER_SUBTRACT,
    SinglePixelStrategy.POWER_RANDOM,
    SinglePixelStrategy.WORST_CASE,
)


@dataclass
class Figure4Result:
    """Accuracy-vs-strength curves for every configuration and strategy."""

    scale_name: str
    attack_strengths: Tuple[float, ...]
    #: curves[(dataset, activation)][strategy.paper_label] -> accuracy list
    curves: Dict[Tuple[str, str], Dict[str, List[float]]] = field(default_factory=dict)
    sweeps: Dict[Tuple[str, str], SweepResult] = field(default_factory=dict)

    def curve(self, dataset: str, activation: str, strategy_label: str) -> List[float]:
        """One accuracy-vs-strength curve."""
        return self.curves[(dataset, activation)][strategy_label]


def _single_run(
    dataset_name: str,
    activation: str,
    scale: ExperimentScale,
    seed: int,
) -> RunResult:
    """Train a victim, probe its power channel, and run all five strategies."""
    dataset = prepare_dataset(dataset_name, scale, random_state=seed)
    model = prepare_model(dataset, activation, scale, random_state=seed)

    accelerator = CrossbarAccelerator(model.network, random_state=seed)
    prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
    probe = prober.probe_all()
    leaked_norms = probe.column_sums

    result = RunResult(
        name=f"figure4/{dataset_name}/{activation}",
        metadata={"dataset": dataset_name, "activation": activation},
    )
    result.add_metric("clean_test_accuracy", model.test_accuracy)
    result.add_metric("probe_queries", probe.queries_used)

    for strategy in STRATEGIES:
        attack = SinglePixelAttack(
            strategy,
            column_norms=leaked_norms,
            network=model.network,
            queries_used=probe.queries_used if strategy.needs_power_information else 0,
            random_state=seed,
        )
        accuracies = [
            accuracy_under_attack(
                model.network,
                attack,
                dataset.test_inputs,
                dataset.test_targets,
                strength,
            )
            for strength in scale.attack_strengths
        ]
        result.add_array(strategy.paper_label, accuracies)
    return result


def run_figure4(scale="bench", *, base_seed: int = 0) -> Figure4Result:
    """Reproduce the Figure 4 accuracy-vs-strength curves."""
    scale = resolve_scale(scale)
    output = Figure4Result(scale_name=scale.name, attack_strengths=tuple(scale.attack_strengths))
    for dataset_name, activation in PAPER_CONFIGURATIONS:
        sweep = run_multi_seed(
            f"figure4/{dataset_name}/{activation}",
            lambda run_index, seed: _single_run(dataset_name, activation, scale, seed),
            n_runs=scale.n_runs,
            base_seed=base_seed,
        )
        curves: Dict[str, List[float]] = {}
        for strategy in STRATEGIES:
            label = strategy.paper_label
            stacked = np.stack([run.arrays[label] for run in sweep])
            curves[label] = stacked.mean(axis=0).tolist()
        output.curves[(dataset_name, activation)] = curves
        output.sweeps[(dataset_name, activation)] = sweep
    return output


def format_figure4(result: Figure4Result) -> str:
    """Render one text panel per configuration (accuracy vs attack strength)."""
    sections = []
    for (dataset, activation), curves in result.curves.items():
        panel = PANEL_LABELS[(dataset, activation)]
        sections.append(
            format_series(
                "strength",
                list(result.attack_strengths),
                curves,
                title=(
                    f"Figure 4({panel}) reproduction — {dataset}, {activation} output "
                    f"(scale={result.scale_name})"
                ),
            )
        )
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - console entry point
    """Run the Figure 4 reproduction at bench scale and print the curves."""
    result = run_figure4("bench")
    print(format_figure4(result))


if __name__ == "__main__":  # pragma: no cover
    main()
