"""Table I — correlation between loss sensitivity and weight-column 1-norms.

For each scenario (by default the paper's four dataset/activation
configurations) the pipeline reports, on the train and test splits, the
"Mean Correlation" (per-sample correlation of ``|∂L/∂u|`` with the column
1-norms, averaged over samples) and the "Correlation of Mean" (correlation of
the set-averaged sensitivity with the column 1-norms), averaged over
independent runs.

The 1-norms used here are obtained the way the attacker would obtain them: by
probing the power side channel of the simulated crossbar accelerator
(:class:`~repro.sidechannel.probing.ColumnNormProber`), which for the ideal
crossbar equals the true 1-norms up to a positive scale factor (correlation is
invariant to that scale).

The pipeline is a registered :class:`~repro.experiments.base.Experiment`
(``"table1"``): each scenario x seed cell is one picklable job, so the whole
sweep runs on a :class:`~repro.experiments.runner.ParallelRunner` process
pool with results bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.correlation import sensitivity_norm_correlations
from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    Job,
    group_results_by_scenario,
)
from repro.experiments.compat import deprecated_formatter, legacy_collision, run_legacy
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register
from repro.experiments.reporting import format_table, has_non_paper_scenarios
from repro.experiments.runner import prepare_dataset
from repro.experiments.scenario import ScenarioSpec
from repro.utils.results import RunResult, SweepResult

#: The values printed in the paper's Table I, for side-by-side comparison.
PAPER_TABLE1: Dict[Tuple[str, str], Dict[str, float]] = {
    ("mnist-like", "linear"): {
        "mean_correlation_train": 0.70,
        "mean_correlation_test": 0.70,
        "correlation_of_mean_train": 0.99,
        "correlation_of_mean_test": 0.98,
    },
    ("mnist-like", "softmax"): {
        "mean_correlation_train": 0.52,
        "mean_correlation_test": 0.52,
        "correlation_of_mean_train": 0.92,
        "correlation_of_mean_test": 0.92,
    },
    ("cifar-like", "linear"): {
        "mean_correlation_train": 0.26,
        "mean_correlation_test": 0.26,
        "correlation_of_mean_train": 0.87,
        "correlation_of_mean_test": 0.87,
    },
    ("cifar-like", "softmax"): {
        "mean_correlation_train": 0.33,
        "mean_correlation_test": 0.33,
        "correlation_of_mean_train": 0.91,
        "correlation_of_mean_test": 0.91,
    },
}

METRIC_KEYS = (
    "mean_correlation_train",
    "mean_correlation_test",
    "correlation_of_mean_train",
    "correlation_of_mean_test",
)


@dataclass
class Table1Result:
    """Aggregated Table I reproduction results."""

    scale_name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    sweeps: Dict[Tuple[str, str], SweepResult] = field(default_factory=dict)

    def row_for(self, dataset: str, activation: str) -> Dict[str, object]:
        """Return the aggregated row for one configuration."""
        for row in self.rows:
            if row["dataset"] == dataset and row["activation"] == activation:
                return row
        raise KeyError(f"no row for ({dataset}, {activation})")


def _run_table1_job(job: Job) -> RunResult:
    """Train one victim under ``job.scenario`` and compute both correlations."""
    scenario, scale, seed = job.scenario, job.scale, job.seed
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    model = scenario.build_victim(dataset, scale, random_state=seed)

    target = scenario.build_accelerator(model.network, random_state=seed)
    prober = scenario.build_prober(target, dataset.n_features, random_state=seed)
    leaked_norms = prober.probe_all().column_sums

    result = RunResult(
        name=f"table1/{scenario.dataset}/{scenario.activation}",
        metadata={"dataset": scenario.dataset, "activation": scenario.activation},
    )
    for split in ("train", "test"):
        inputs = dataset.train_inputs if split == "train" else dataset.test_inputs
        targets = dataset.train_targets if split == "train" else dataset.test_targets
        summary = sensitivity_norm_correlations(
            model.network, inputs, targets, column_norms=leaked_norms
        )
        result.add_metric(f"mean_correlation_{split}", summary.mean_correlation)
        result.add_metric(f"correlation_of_mean_{split}", summary.correlation_of_mean)
    result.add_metric("victim_test_accuracy", model.test_accuracy)
    return result


class Table1Experiment(Experiment):
    """Registered pipeline reproducing the paper's Table I.

    Jobs are the default scenario x seed grid from the :class:`Experiment`
    base class.
    """

    name = "table1"
    description = "Sensitivity vs leaked column-1-norm correlations (Table I)"

    run_job = staticmethod(_run_table1_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(
            experiment=self.name,
            scale_name=scale.name,
            scenarios=[scenario.name for scenario in scenarios],
        )
        rows: List[Dict[str, object]] = []
        for scenario, runs in group_results_by_scenario(jobs, results):
            sweep = SweepResult(
                name=f"table1/{scenario.dataset}/{scenario.activation}",
                metadata={"n_runs": scale.n_runs, "scenario": scenario.name},
            )
            for result in runs:
                sweep.add(result)
                assembled.sweep.add(result)
            row: Dict[str, object] = {
                "scenario": scenario.name,
                "dataset": scenario.dataset,
                "activation": scenario.activation,
            }
            for key in METRIC_KEYS:
                row[key] = sweep.mean_metric(key)
                row[f"{key}_std"] = sweep.std_metric(key)
            if scenario.is_paper_ideal and scenario.configuration in PAPER_TABLE1:
                row["paper"] = PAPER_TABLE1[scenario.configuration]
            row["victim_test_accuracy"] = sweep.mean_metric("victim_test_accuracy")
            rows.append(row)
        assembled.summary["rows"] = rows
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        """Render from the scenario-keyed summary rows (collision-free).

        The legacy adapter is deliberately bypassed: it raises when two
        scenarios share a (dataset, activation) pair, which is a perfectly
        valid selection for the scenario-keyed result being formatted here.
        """
        rows = [dict(row) for row in result.summary.get("rows", [])]
        return _format_table1(Table1Result(scale_name=result.scale_name, rows=rows))


register(Table1Experiment)


def _legacy_result(result: ExperimentResult) -> Table1Result:
    """Adapt an :class:`ExperimentResult` to the historical result type.

    The legacy per-configuration ``sweeps`` are keyed by (dataset,
    activation); scenario selections where two scenarios share that pair
    would merge their runs (corrupting per-configuration statistics), so
    they raise instead — the scenario-keyed ``rows`` remain exact either way.
    """
    output = Table1Result(scale_name=result.scale_name)
    output.rows = [dict(row) for row in result.summary.get("rows", [])]
    scenario_for_key: Dict[Tuple[str, str], str] = {}
    for run in result.sweep:
        key = (run.metadata.get("dataset"), run.metadata.get("activation"))
        scenario = str(run.metadata.get("scenario"))
        if scenario_for_key.setdefault(key, scenario) != scenario:
            raise legacy_collision("table1", key, "configuration")
        if key not in output.sweeps:
            output.sweeps[key] = SweepResult(name=run.name)
        output.sweeps[key].add(run)
    return output


def run_table1(
    scale="bench", *, base_seed: int = 0, runner=None, scenarios=None
) -> Table1Result:
    """DEPRECATED: reproduce Table I (legacy-shaped result).

    Use ``get_experiment("table1").run(...)`` for scenario-keyed results;
    this wrapper delegates through :func:`repro.experiments.compat.run_legacy`
    and emits a :class:`DeprecationWarning`.
    """
    return run_legacy(
        "table1",
        _legacy_result,
        wrapper="run_table1()",
        scale=scale,
        scenarios=scenarios,
        runner=runner,
        base_seed=base_seed,
    )


def _format_table1(result: Table1Result) -> str:
    """Render the reproduction next to the paper's reported values."""
    with_scenario = has_non_paper_scenarios(result.rows)
    headers = (["Scenario"] if with_scenario else []) + [
        "Dataset",
        "Activation",
        "MeanCorr(train)",
        "MeanCorr(test)",
        "CorrOfMean(train)",
        "CorrOfMean(test)",
        "Paper MeanCorr(test)",
        "Paper CorrOfMean(test)",
    ]
    rows = []
    for row in result.rows:
        paper = row.get("paper")
        rows.append(
            ([row.get("scenario", "-")] if with_scenario else [])
            + [
                row["dataset"],
                row["activation"],
                float(row["mean_correlation_train"]),
                float(row["mean_correlation_test"]),
                float(row["correlation_of_mean_train"]),
                float(row["correlation_of_mean_test"]),
                float(paper["mean_correlation_test"]) if paper else "-",
                float(paper["correlation_of_mean_test"]) if paper else "-",
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Table I reproduction (scale={result.scale_name})",
        float_precision=2,
    )


#: DEPRECATED public spelling of :func:`_format_table1`.
format_table1 = deprecated_formatter(
    _format_table1, "get_experiment('table1').format_result(...)"
)


def main() -> None:  # pragma: no cover - console entry point
    """Run the Table I reproduction at bench scale and print it."""
    result = _legacy_result(Table1Experiment().run("bench"))
    print(_format_table1(result))


if __name__ == "__main__":  # pragma: no cover
    main()
