"""Table I — correlation between loss sensitivity and weight-column 1-norms.

For each of the four dataset/activation configurations the paper reports, on
the train and test splits, the "Mean Correlation" (per-sample correlation of
``|∂L/∂u|`` with the column 1-norms, averaged over samples) and the
"Correlation of Mean" (correlation of the set-averaged sensitivity with the
column 1-norms), averaged over independent runs.

The 1-norms used here are obtained the way the attacker would obtain them: by
probing the power side channel of the simulated crossbar accelerator
(:class:`~repro.sidechannel.probing.ColumnNormProber`), which for the ideal
crossbar equals the true 1-norms up to a positive scale factor (correlation is
invariant to that scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.correlation import sensitivity_norm_correlations
from repro.crossbar.accelerator import CrossbarAccelerator
from repro.experiments.config import PAPER_CONFIGURATIONS, ExperimentScale, resolve_scale
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_dataset, prepare_model, run_multi_seed
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.utils.results import RunResult, SweepResult

#: The values printed in the paper's Table I, for side-by-side comparison.
PAPER_TABLE1: Dict[Tuple[str, str], Dict[str, float]] = {
    ("mnist-like", "linear"): {
        "mean_correlation_train": 0.70,
        "mean_correlation_test": 0.70,
        "correlation_of_mean_train": 0.99,
        "correlation_of_mean_test": 0.98,
    },
    ("mnist-like", "softmax"): {
        "mean_correlation_train": 0.52,
        "mean_correlation_test": 0.52,
        "correlation_of_mean_train": 0.92,
        "correlation_of_mean_test": 0.92,
    },
    ("cifar-like", "linear"): {
        "mean_correlation_train": 0.26,
        "mean_correlation_test": 0.26,
        "correlation_of_mean_train": 0.87,
        "correlation_of_mean_test": 0.87,
    },
    ("cifar-like", "softmax"): {
        "mean_correlation_train": 0.33,
        "mean_correlation_test": 0.33,
        "correlation_of_mean_train": 0.91,
        "correlation_of_mean_test": 0.91,
    },
}

METRIC_KEYS = (
    "mean_correlation_train",
    "mean_correlation_test",
    "correlation_of_mean_train",
    "correlation_of_mean_test",
)


@dataclass
class Table1Result:
    """Aggregated Table I reproduction results."""

    scale_name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    sweeps: Dict[Tuple[str, str], SweepResult] = field(default_factory=dict)

    def row_for(self, dataset: str, activation: str) -> Dict[str, object]:
        """Return the aggregated row for one configuration."""
        for row in self.rows:
            if row["dataset"] == dataset and row["activation"] == activation:
                return row
        raise KeyError(f"no row for ({dataset}, {activation})")


def _single_run(
    dataset_name: str, activation: str, scale: ExperimentScale, seed: int
) -> RunResult:
    """Train one victim and compute both correlation statistics."""
    dataset = prepare_dataset(dataset_name, scale, random_state=seed)
    model = prepare_model(dataset, activation, scale, random_state=seed)

    accelerator = CrossbarAccelerator(model.network, random_state=seed)
    prober = ColumnNormProber(PowerMeasurement(accelerator), dataset.n_features)
    leaked_norms = prober.probe_all().column_sums

    result = RunResult(
        name=f"table1/{dataset_name}/{activation}",
        metadata={"dataset": dataset_name, "activation": activation},
    )
    for split in ("train", "test"):
        inputs = dataset.train_inputs if split == "train" else dataset.test_inputs
        targets = dataset.train_targets if split == "train" else dataset.test_targets
        summary = sensitivity_norm_correlations(
            model.network, inputs, targets, column_norms=leaked_norms
        )
        result.add_metric(f"mean_correlation_{split}", summary.mean_correlation)
        result.add_metric(f"correlation_of_mean_{split}", summary.correlation_of_mean)
    result.add_metric("victim_test_accuracy", model.test_accuracy)
    return result


def run_table1(scale="bench", *, base_seed: int = 0) -> Table1Result:
    """Reproduce Table I at the requested scale."""
    scale = resolve_scale(scale)
    output = Table1Result(scale_name=scale.name)
    for dataset_name, activation in PAPER_CONFIGURATIONS:
        sweep = run_multi_seed(
            f"table1/{dataset_name}/{activation}",
            lambda run_index, seed: _single_run(dataset_name, activation, scale, seed),
            n_runs=scale.n_runs,
            base_seed=base_seed,
        )
        row: Dict[str, object] = {"dataset": dataset_name, "activation": activation}
        for key in METRIC_KEYS:
            row[key] = sweep.mean_metric(key)
            row[f"{key}_std"] = sweep.std_metric(key)
        row["paper"] = PAPER_TABLE1[(dataset_name, activation)]
        row["victim_test_accuracy"] = sweep.mean_metric("victim_test_accuracy")
        output.rows.append(row)
        output.sweeps[(dataset_name, activation)] = sweep
    return output


def format_table1(result: Table1Result) -> str:
    """Render the reproduction next to the paper's reported values."""
    headers = [
        "Dataset",
        "Activation",
        "MeanCorr(train)",
        "MeanCorr(test)",
        "CorrOfMean(train)",
        "CorrOfMean(test)",
        "Paper MeanCorr(test)",
        "Paper CorrOfMean(test)",
    ]
    rows = []
    for row in result.rows:
        paper = row["paper"]
        rows.append(
            [
                row["dataset"],
                row["activation"],
                float(row["mean_correlation_train"]),
                float(row["mean_correlation_test"]),
                float(row["correlation_of_mean_train"]),
                float(row["correlation_of_mean_test"]),
                float(paper["mean_correlation_test"]),
                float(paper["correlation_of_mean_test"]),
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Table I reproduction (scale={result.scale_name})",
        float_precision=2,
    )


def main() -> None:  # pragma: no cover - console entry point
    """Run the Table I reproduction at bench scale and print it."""
    result = run_table1("bench")
    print(format_table1(result))


if __name__ == "__main__":  # pragma: no cover
    main()
