"""Experiment registry and the uniform ``run_experiments`` entry point.

Experiments register themselves at import time via :func:`register`; the
four paper pipelines (``table1``, ``figure3``, ``figure4``, ``figure5``) and
the built-in scenario sweeps (``sweep-*``) are imported lazily on first
lookup so worker processes that unpickle a job can resolve its experiment
without any caller-side setup.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.config import resolve_scale
from repro.utils.serialization import save_json

_REGISTRY: Dict[str, Experiment] = {}

#: Modules that define (and register) the built-in experiments.
_BUILTIN_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.figure3",
    "repro.experiments.figure4",
    "repro.experiments.figure5",
    "repro.experiments.sweep",
    "repro.experiments.service_demo",
    "repro.experiments.cross_tenant",
)


def register(experiment: Union[Experiment, type]) -> Experiment:
    """Register an experiment (class or instance) under its ``name``.

    Returns the registered instance, so it can be used as a class decorator.
    Registering a *different* experiment under an existing name is rejected;
    re-registering an experiment with an equal
    :meth:`~repro.experiments.base.Experiment.registration_fingerprint` is a
    no-op returning the existing instance (this happens legitimately when an
    experiment module is executed as a script — ``python -m
    repro.experiments.table1`` imports the module once through the package
    and once as ``__main__``).
    """
    instance = experiment() if isinstance(experiment, type) else experiment
    if not isinstance(instance, Experiment):
        raise TypeError(f"expected an Experiment, got {type(instance).__name__}")
    if not instance.name:
        raise ValueError("experiment must define a non-empty name")
    key = str(instance.name).lower()  # lookups are case-insensitive
    existing = _REGISTRY.get(key)
    if existing is not None:
        if existing.registration_fingerprint() == instance.registration_fingerprint():
            return experiment if isinstance(experiment, type) else existing
        raise ValueError(f"experiment {instance.name!r} is already registered")
    _REGISTRY[key] = instance
    return experiment if isinstance(experiment, type) else instance


def _ensure_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment by name (instances pass through)."""
    if isinstance(name, Experiment):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        _ensure_builtins()
    if key not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; available: {list_experiments()}")
    return _REGISTRY[key]


def list_experiments() -> List[str]:
    """Sorted names of every registered experiment."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def _derive_journal_path(path, experiment_name: str) -> Path:
    """Per-experiment journal path: ``run.jsonl`` -> ``run.<name>.jsonl``."""
    path = Path(path)
    return path.with_name(f"{path.stem}.{experiment_name}{path.suffix}")


@contextmanager
def _scoped_journal_paths(executor, experiment_name: str, multi: bool):
    """Give each experiment of a multi-experiment run its own journal files.

    A :class:`~repro.executor.queue.QueueExecutor` journal describes exactly
    one job grid: sharing one path across experiments would truncate each
    previous experiment's journal on open, and a shared ``resume`` path
    raises :class:`~repro.executor.errors.JournalMismatchError` on the
    second grid.  A derived ``resume`` file that does not exist (the
    previous run crashed before reaching that experiment) simply means a
    fresh run for that experiment.
    """
    journal = getattr(executor, "journal", None)
    resume = getattr(executor, "resume", None)
    if not multi or (journal is None and resume is None):
        yield
        return
    try:
        if journal is not None:
            executor.journal = _derive_journal_path(journal, experiment_name)
        if resume is not None:
            derived = _derive_journal_path(resume, experiment_name)
            executor.resume = derived if derived.exists() else None
        yield
    finally:
        executor.journal = journal
        executor.resume = resume


def run_experiments(
    names: Optional[Sequence[str]] = None,
    scale="bench",
    *,
    executor=None,
    runner=None,
    scenarios=None,
    base_seed: int = 0,
    output_dir=None,
) -> Dict[str, ExperimentResult]:
    """Run any subset of registered experiments through one uniform pipeline.

    Parameters
    ----------
    names:
        Experiment names to run; ``None`` runs every registered experiment.
    scale:
        Size preset name or :class:`~repro.experiments.config.ExperimentScale`
        shared by all selected experiments.
    executor:
        An :class:`~repro.executor.Executor` instance or name (``"serial"``,
        ``"process"``, ``"thread"``, ``"queue"``) shared by every selected
        experiment; results are bit-identical under every backend.  When a
        :class:`~repro.executor.QueueExecutor` carrying ``journal``/``resume``
        paths is shared by more than one experiment, each experiment reads
        and writes its own derived file (``run.jsonl`` ->
        ``run.<experiment>.jsonl``) — one journal describes one job grid.
    runner:
        Deprecated alias: a
        :class:`~repro.experiments.runner.ParallelRunner`, mapped onto a
        :class:`~repro.executor.PoolExecutor`.  Pass ``executor=`` instead.
    scenarios:
        Scenario preset names / :class:`ScenarioSpec` instances shared by all
        selected experiments; ``None`` selects the paper configurations.
    base_seed:
        Root seed for the deterministic per-job seed derivation.
    output_dir:
        When given, each :class:`ExperimentResult` is serialised to
        ``<output_dir>/<experiment>_<scale>.json`` via
        :mod:`repro.utils.serialization`.

    Returns
    -------
    dict mapping experiment name -> :class:`ExperimentResult`, in run order.
    """
    from repro.executor import coerce_executor

    executor = coerce_executor(executor, runner, owner="run_experiments()")
    if names is None:
        names = list_experiments()
    scale = resolve_scale(scale)
    results: Dict[str, ExperimentResult] = {}
    multi = len(names) > 1
    for name in names:
        experiment = get_experiment(name)
        with _scoped_journal_paths(executor, experiment.name, multi):
            result = experiment.run(
                scale, scenarios=scenarios, executor=executor, base_seed=base_seed
            )
        results[experiment.name] = result
        if output_dir is not None:
            path = Path(output_dir) / f"{experiment.name}_{scale.name}.json"
            save_json(result.to_dict(), path)
    return results
