"""Figure 5 — surrogate-based black-box attacks with power information.

The paper's Figure 5 has four rows, one per (dataset, observation mode)
combination: MNIST/label-only, MNIST/raw-output, CIFAR-10/label-only,
CIFAR-10/raw-output.  Each row contains three panels:

* surrogate test accuracy vs number of queries, one curve per power-loss
  weight λ (left panels a, d, g, j),
* oracle test accuracy under FGSM examples crafted on the surrogate
  (attack strength 0.1) vs number of queries (centre panels b, e, h, k),
* the improvement in the oracle's accuracy *degradation* when power
  information is used, relative to λ = 0, with asterisks marking p < 0.05
  under a Student's t-test over the independent runs (right panels c, f, i, l).

The pipeline is a registered :class:`~repro.experiments.base.Experiment`
(``"figure5"``): each (row, seed) cell is one picklable job — the per-seed
λ x query-count sweep stays inside the job so every stochastic component is
derived from the job's seed alone — and the whole figure runs on a
:class:`~repro.experiments.runner.ParallelRunner` process pool with results
bit-identical to the serial path.  Rows are derived from the scenario list
(unique datasets x both observation modes) or passed explicitly via the
legacy ``rows`` option.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.statistics import independent_ttest
from repro.attacks.oracle import Oracle
from repro.attacks.surrogate import SurrogateAttack, SurrogateConfig
from repro.experiments.base import Experiment, ExperimentResult, Job
from repro.experiments.compat import deprecated_formatter, legacy_collision, run_legacy
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.experiments.registry import register
from repro.experiments.reporting import format_series
from repro.experiments.runner import ParallelRunner, prepare_dataset
from repro.experiments.scenario import ScenarioSpec
from repro.utils.results import RunResult
from repro.utils.rng import seeds_for_runs

#: Figure 5 row labels keyed by (dataset, output_mode).
ROW_LABELS: Dict[Tuple[str, str], str] = {
    ("mnist-like", "label"): "ROW 1 (panels a,b,c)",
    ("mnist-like", "raw"): "ROW 2 (panels d,e,f)",
    ("cifar-like", "label"): "ROW 3 (panels g,h,i)",
    ("cifar-like", "raw"): "ROW 4 (panels j,k,l)",
}

OUTPUT_MODES: Tuple[str, ...] = ("label", "raw")

DEFAULT_ROWS: Tuple[Tuple[str, str], ...] = (
    ("mnist-like", "label"),
    ("mnist-like", "raw"),
    ("cifar-like", "label"),
    ("cifar-like", "raw"),
)

#: FGSM ε applied to the oracle (0.1 in the paper).
DEFAULT_ATTACK_STRENGTH = 0.1


@dataclass
class Figure5Row:
    """Results for one row of Figure 5 (one dataset / observation mode)."""

    dataset: str
    output_mode: str
    query_counts: Tuple[int, ...]
    power_loss_weights: Tuple[float, ...]
    #: surrogate_accuracy[lambda][query index] -> list over runs
    surrogate_accuracy: Dict[float, List[List[float]]] = field(default_factory=dict)
    #: adversarial_accuracy[lambda][query index] -> list over runs
    adversarial_accuracy: Dict[float, List[List[float]]] = field(default_factory=dict)
    oracle_clean_accuracy: float = 0.0

    def mean_surrogate_curve(self, power_loss_weight: float) -> List[float]:
        """Mean surrogate accuracy vs queries for one λ (left panel curve)."""
        return [float(np.mean(vals)) for vals in self.surrogate_accuracy[power_loss_weight]]

    def mean_adversarial_curve(self, power_loss_weight: float) -> List[float]:
        """Mean oracle adversarial accuracy vs queries for one λ (centre panel)."""
        return [float(np.mean(vals)) for vals in self.adversarial_accuracy[power_loss_weight]]

    def degradation_improvement(
        self, power_loss_weight: float, *, alpha: float = 0.05
    ) -> List[Dict[str, float]]:
        """Right-panel data: improvement over λ=0 with significance markers.

        The paper plots the *difference in accuracy degradation* between the
        power-augmented and power-free surrogates; positive values mean the
        power information made the attack more effective.
        """
        if 0.0 not in self.adversarial_accuracy:
            raise ValueError("the λ=0 baseline is required to compute improvements")
        baseline = self.adversarial_accuracy[0.0]
        candidate = self.adversarial_accuracy[power_loss_weight]
        improvements = []
        for query_index in range(len(self.query_counts)):
            base_vals = np.asarray(baseline[query_index], dtype=float)
            cand_vals = np.asarray(candidate[query_index], dtype=float)
            # degradation = clean - adversarial; improvement = degradation_power - degradation_baseline
            # which equals baseline_adv - candidate_adv.
            improvement = float(np.mean(base_vals) - np.mean(cand_vals))
            if len(base_vals) >= 2 and len(cand_vals) >= 2:
                test = independent_ttest(base_vals, cand_vals, alpha=alpha)
                p_value, significant = test.p_value, test.significant
            else:
                p_value, significant = 1.0, False
            improvements.append(
                {
                    "n_queries": float(self.query_counts[query_index]),
                    "improvement": improvement,
                    "p_value": p_value,
                    "significant": bool(significant),
                }
            )
        return improvements


@dataclass
class Figure5Result:
    """All requested rows of Figure 5."""

    scale_name: str
    rows: Dict[Tuple[str, str], Figure5Row] = field(default_factory=dict)

    def row(self, dataset: str, output_mode: str) -> Figure5Row:
        """One row of the figure."""
        return self.rows[(dataset, output_mode)]


def _sweep_row_cells(
    victim,
    dataset,
    output_mode: str,
    scale: ExperimentScale,
    seed: int,
    attack_strength: float,
) -> Dict[Tuple[float, int], Tuple[float, float]]:
    """The per-seed λ x query-count sweep against one trained victim."""
    query_counts = tuple(int(q) for q in scale.query_counts)
    lambdas = tuple(float(lam) for lam in scale.power_loss_weights)
    cells: Dict[Tuple[float, int], Tuple[float, float]] = {}
    for lam in lambdas:
        config = SurrogateConfig(power_loss_weight=lam, epochs=scale.surrogate_epochs)
        for query_index, n_queries in enumerate(query_counts):
            oracle = Oracle(
                victim.network,
                output_mode=output_mode,
                expose_power=lam > 0,
                random_state=seed,
            )
            attack = SurrogateAttack(
                oracle,
                config=config,
                attack_strength=attack_strength,
                random_state=seed + 7919 * (query_index + 1),
            )
            query_inputs = dataset.query_pool(n_queries, random_state=seed + query_index)
            outcome = attack.run(query_inputs, dataset.test_inputs, dataset.test_targets)
            cells[(lam, query_index)] = (
                outcome.surrogate_test_accuracy,
                outcome.oracle_adversarial_accuracy,
            )
    return cells


def _run_figure5_job(job: Job) -> RunResult:
    """One (row, seed) job: the full λ x query-count sweep for one victim.

    The victim is the linear-output single-layer network (Section IV uses
    only the linear activation for the surrogate output loss); the scenario
    contributes its dataset and any training-time defence.
    """
    scenario, scale, seed = job.scenario, job.scale, job.seed
    output_mode = job.param("output_mode", "raw")
    attack_strength = float(job.param("attack_strength", DEFAULT_ATTACK_STRENGTH))
    if scenario.activation != "linear":
        scenario = scenario.with_overrides(activation="linear")
    dataset = prepare_dataset(scenario.dataset, scale, random_state=seed)
    victim = scenario.build_victim(dataset, scale, random_state=seed)
    cells = _sweep_row_cells(victim, dataset, output_mode, scale, seed, attack_strength)

    query_counts = tuple(int(q) for q in scale.query_counts)
    lambdas = tuple(float(lam) for lam in scale.power_loss_weights)
    surrogate = np.array(
        [[cells[(lam, qi)][0] for qi in range(len(query_counts))] for lam in lambdas]
    )
    adversarial = np.array(
        [[cells[(lam, qi)][1] for qi in range(len(query_counts))] for lam in lambdas]
    )
    result = RunResult(
        name=f"figure5/{scenario.dataset}/{output_mode}",
        metadata={
            "dataset": scenario.dataset,
            "output_mode": output_mode,
            "attack_strength": attack_strength,
            "query_counts": list(query_counts),
            "power_loss_weights": list(lambdas),
        },
    )
    result.add_array("surrogate_accuracy", surrogate)
    result.add_array("adversarial_accuracy", adversarial)
    result.add_metric("oracle_clean_accuracy", victim.test_accuracy)
    return result


class Figure5Experiment(Experiment):
    """Registered pipeline reproducing Figure 5."""

    name = "figure5"
    description = "Surrogate black-box attacks with the power loss term (Figure 5)"

    def build_jobs(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        *,
        base_seed: int = 0,
        rows: Optional[Sequence[Tuple[str, str]]] = None,
        attack_strength: float = DEFAULT_ATTACK_STRENGTH,
    ) -> List[Job]:
        """One job per (scenario, observation mode, seed).

        The victim activation is always linear (Section IV), so scenarios
        that differ *only* in activation are collapsed into one effective
        scenario — with the four paper presets that reproduces the paper's
        four rows (two datasets x two modes) exactly.  Scenarios with
        distinct hardware/defence stacks are all kept, even on the same
        dataset.  The ``rows`` option restricts/selects (dataset, mode)
        pairs explicitly; each row's dataset is paired with the first
        matching scenario (an ideal ad-hoc one when none matches).
        """
        effective: Dict[ScenarioSpec, ScenarioSpec] = {}
        for scenario in scenarios:
            linear = scenario.with_overrides(activation="linear")
            # collapse scenarios identical up to name/description/activation
            key = linear.with_overrides(name="effective", description="")
            effective.setdefault(key, linear)
        unique_scenarios = list(effective.values())
        if rows is None:
            pairs = [
                (scenario, mode)
                for scenario in unique_scenarios
                for mode in OUTPUT_MODES
            ]
        else:
            from repro.datasets import canonical_dataset_name

            scenario_for_dataset: Dict[str, ScenarioSpec] = {}
            for scenario in unique_scenarios:
                scenario_for_dataset.setdefault(scenario.dataset, scenario)
            pairs = []
            for dataset_name, output_mode in rows:
                dataset_name = canonical_dataset_name(dataset_name)
                scenario = scenario_for_dataset.get(dataset_name)
                if scenario is None:
                    scenario = ScenarioSpec(
                        name=f"adhoc/{dataset_name}-linear",
                        dataset=dataset_name,
                        activation="linear",
                    )
                pairs.append((scenario, output_mode))
        seeds = seeds_for_runs(base_seed, scale.n_runs)
        return [
            Job(
                experiment=self.name,
                scenario=scenario,
                scale=scale,
                seed=seed,
                run_index=run_index,
                params=(
                    ("output_mode", output_mode),
                    ("attack_strength", float(attack_strength)),
                ),
            )
            for scenario, output_mode in pairs
            for run_index, seed in enumerate(seeds)
        ]

    run_job = staticmethod(_run_figure5_job)

    def assemble(
        self,
        scale: ExperimentScale,
        scenarios: Sequence[ScenarioSpec],
        jobs: Sequence[Job],
        results: Sequence[RunResult],
    ) -> ExperimentResult:
        assembled = ExperimentResult(
            experiment=self.name,
            scale_name=scale.name,
            scenarios=[scenario.name for scenario in scenarios],
        )
        query_counts = tuple(int(q) for q in scale.query_counts)
        lambdas = tuple(float(lam) for lam in scale.power_loss_weights)
        # keyed by the scenario *object* so distinct specs sharing a name
        # cannot merge into one row
        rows: Dict[Tuple[ScenarioSpec, str], Dict[str, object]] = {}
        for job, result in zip(jobs, results):
            assembled.sweep.add(result)
            key = (job.scenario, str(job.param("output_mode")))
            if key not in rows:
                rows[key] = {
                    "scenario": job.scenario.name,
                    "dataset": job.scenario.dataset,
                    "output_mode": key[1],
                    "query_counts": list(query_counts),
                    "power_loss_weights": list(lambdas),
                    "surrogate_accuracy": [],
                    "adversarial_accuracy": [],
                    "clean_accuracies": [],
                }
            rows[key]["surrogate_accuracy"].append(
                result.arrays["surrogate_accuracy"].tolist()
            )
            rows[key]["adversarial_accuracy"].append(
                result.arrays["adversarial_accuracy"].tolist()
            )
            rows[key]["clean_accuracies"].append(
                result.metrics["oracle_clean_accuracy"]
            )
        assembled.summary["rows"] = list(rows.values())
        return assembled

    def format_result(self, result: ExperimentResult) -> str:
        """Render every row as three text panels (scenario-keyed, collision-free)."""
        sections = []
        for entry in result.summary.get("rows", []):
            row = _row_from_summary_entry(entry)
            label = ROW_LABELS.get(
                (row.dataset, row.output_mode), f"{row.dataset}/{row.output_mode}"
            )
            scenario = str(entry.get("scenario", ""))
            if not scenario.startswith("paper/"):
                label = f"{label} [{scenario}]"
            sections.extend(_format_row(row, label))
        return "\n\n".join(sections)


register(Figure5Experiment)


def _row_from_summary_entry(entry) -> Figure5Row:
    """Rebuild one :class:`Figure5Row` from its summary-dict form."""
    query_counts = tuple(int(q) for q in entry["query_counts"])
    lambdas = tuple(float(lam) for lam in entry["power_loss_weights"])
    row = Figure5Row(
        dataset=entry["dataset"],
        output_mode=entry["output_mode"],
        query_counts=query_counts,
        power_loss_weights=lambdas,
        surrogate_accuracy={lam: [[] for _ in query_counts] for lam in lambdas},
        adversarial_accuracy={lam: [[] for _ in query_counts] for lam in lambdas},
    )
    for surrogate, adversarial in zip(
        entry["surrogate_accuracy"], entry["adversarial_accuracy"]
    ):
        for lam_index, lam in enumerate(lambdas):
            for query_index in range(len(query_counts)):
                row.surrogate_accuracy[lam][query_index].append(
                    float(surrogate[lam_index][query_index])
                )
                row.adversarial_accuracy[lam][query_index].append(
                    float(adversarial[lam_index][query_index])
                )
    row.oracle_clean_accuracy = float(np.mean(entry["clean_accuracies"]))
    return row


def _legacy_result(result: ExperimentResult) -> Figure5Result:
    """Adapt an :class:`ExperimentResult` to the historical result type.

    The legacy :class:`Figure5Result` is keyed by (dataset, output_mode), so
    scenario selections where two scenarios share a dataset cannot be
    represented — they raise rather than silently overwriting each other.
    """
    output = Figure5Result(scale_name=result.scale_name)
    for entry in result.summary.get("rows", []):
        row = _row_from_summary_entry(entry)
        key = (row.dataset, row.output_mode)
        if key in output.rows:
            raise legacy_collision("figure5", key, "row")
        output.rows[key] = row
    return output


def run_figure5(
    scale="bench",
    *,
    rows: Optional[Sequence[Tuple[str, str]]] = None,
    base_seed: int = 0,
    attack_strength: float = DEFAULT_ATTACK_STRENGTH,
    runner: Optional["ParallelRunner"] = None,
    scenarios=None,
) -> Figure5Result:
    """Reproduce Figure 5 (legacy-shaped result).

    Parameters
    ----------
    scale:
        Size preset or :class:`ExperimentScale`.
    rows:
        Which (dataset, output_mode) rows to run; defaults to all four.
    attack_strength:
        FGSM ε applied to the oracle (0.1 in the paper).
    runner:
        Optional :class:`~repro.experiments.runner.ParallelRunner`; the
        independent (row, seed) jobs are then executed on its worker pool
        (bit-identical results, wall-clock scales with cores).
    scenarios:
        Optional scenario selection (defaults to the paper configurations).
        With explicit ``rows``, each row's dataset is paired with the first
        scenario for that dataset (its hardware/defence stack applies), or
        with an ideal ad-hoc scenario when none matches.

    DEPRECATED: use ``get_experiment("figure5").run(...)`` for scenario-keyed
    results; this wrapper delegates through
    :func:`repro.experiments.compat.run_legacy` and emits a
    :class:`DeprecationWarning`.
    """
    scale = resolve_scale(scale)
    if rows is None and scenarios is None:
        rows = DEFAULT_ROWS
    return run_legacy(
        "figure5",
        _legacy_result,
        wrapper="run_figure5()",
        scale=scale,
        scenarios=scenarios,
        runner=runner,
        base_seed=base_seed,
        rows=rows,
        attack_strength=attack_strength,
    )


def _format_row(row: Figure5Row, label: str) -> List[str]:
    """The three text panels (surrogate, adversarial, improvement) of one row."""
    lambdas = row.power_loss_weights
    surrogate_series = {
        f"lambda={lam:g}": row.mean_surrogate_curve(lam) for lam in lambdas
    }
    adversarial_series = {
        f"lambda={lam:g}": row.mean_adversarial_curve(lam) for lam in lambdas
    }
    sections = [
        format_series(
            "queries",
            list(row.query_counts),
            surrogate_series,
            title=(
                f"Figure 5 {label} — surrogate test accuracy "
                f"({row.dataset}, {row.output_mode} outputs)"
            ),
        ),
        format_series(
            "queries",
            list(row.query_counts),
            adversarial_series,
            title=(
                f"Figure 5 {label} — oracle accuracy under transferred FGSM "
                f"(clean accuracy {row.oracle_clean_accuracy:.3f})"
            ),
        ),
    ]
    improvement_lines = [
        f"Figure 5 {label} — attack-efficacy improvement over lambda=0 ('*' = p<0.05)"
    ]
    for lam in lambdas:
        if lam == 0.0:
            continue
        entries = row.degradation_improvement(lam)
        rendered = "  ".join(
            f"Q={int(e['n_queries'])}:{e['improvement']:+.3f}{'*' if e['significant'] else ' '}"
            for e in entries
        )
        improvement_lines.append(f"  lambda={lam:g}: {rendered}")
    sections.append("\n".join(improvement_lines))
    return sections


def _format_figure5(result: Figure5Result) -> str:
    """Render every requested row as three text panels."""
    sections = []
    for (dataset, output_mode), row in result.rows.items():
        label = ROW_LABELS.get((dataset, output_mode), f"{dataset}/{output_mode}")
        sections.extend(_format_row(row, label))
    return "\n\n".join(sections)


#: DEPRECATED public spelling of :func:`_format_figure5`.
format_figure5 = deprecated_formatter(
    _format_figure5, "get_experiment('figure5').format_result(...)"
)


def main() -> None:  # pragma: no cover - console entry point
    """Run the MNIST rows of Figure 5 at bench scale and print them."""
    result = _legacy_result(
        Figure5Experiment().run(
            "bench", rows=(("mnist-like", "label"), ("mnist-like", "raw"))
        )
    )
    print(_format_figure5(result))


if __name__ == "__main__":  # pragma: no cover
    main()
