"""Figure 5 — surrogate-based black-box attacks with power information.

The paper's Figure 5 has four rows, one per (dataset, observation mode)
combination: MNIST/label-only, MNIST/raw-output, CIFAR-10/label-only,
CIFAR-10/raw-output.  Each row contains three panels:

* surrogate test accuracy vs number of queries, one curve per power-loss
  weight λ (left panels a, d, g, j),
* oracle test accuracy under FGSM examples crafted on the surrogate
  (attack strength 0.1) vs number of queries (centre panels b, e, h, k),
* the improvement in the oracle's accuracy *degradation* when power
  information is used, relative to λ = 0, with asterisks marking p < 0.05
  under a Student's t-test over the independent runs (right panels c, f, i, l).

This module reproduces all three panels for any subset of datasets and
observation modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.statistics import independent_ttest
from repro.attacks.oracle import Oracle
from repro.attacks.surrogate import SurrogateAttack, SurrogateConfig
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.experiments.reporting import format_series
from repro.experiments.runner import ParallelRunner, prepare_dataset, prepare_model
from repro.utils.rng import seeds_for_runs

#: Figure 5 row labels keyed by (dataset, output_mode).
ROW_LABELS: Dict[Tuple[str, str], str] = {
    ("mnist-like", "label"): "ROW 1 (panels a,b,c)",
    ("mnist-like", "raw"): "ROW 2 (panels d,e,f)",
    ("cifar-like", "label"): "ROW 3 (panels g,h,i)",
    ("cifar-like", "raw"): "ROW 4 (panels j,k,l)",
}

DEFAULT_ROWS: Tuple[Tuple[str, str], ...] = (
    ("mnist-like", "label"),
    ("mnist-like", "raw"),
    ("cifar-like", "label"),
    ("cifar-like", "raw"),
)


@dataclass
class Figure5Row:
    """Results for one row of Figure 5 (one dataset / observation mode)."""

    dataset: str
    output_mode: str
    query_counts: Tuple[int, ...]
    power_loss_weights: Tuple[float, ...]
    #: surrogate_accuracy[lambda][query index] -> list over runs
    surrogate_accuracy: Dict[float, List[List[float]]] = field(default_factory=dict)
    #: adversarial_accuracy[lambda][query index] -> list over runs
    adversarial_accuracy: Dict[float, List[List[float]]] = field(default_factory=dict)
    oracle_clean_accuracy: float = 0.0

    def mean_surrogate_curve(self, power_loss_weight: float) -> List[float]:
        """Mean surrogate accuracy vs queries for one λ (left panel curve)."""
        return [float(np.mean(vals)) for vals in self.surrogate_accuracy[power_loss_weight]]

    def mean_adversarial_curve(self, power_loss_weight: float) -> List[float]:
        """Mean oracle adversarial accuracy vs queries for one λ (centre panel)."""
        return [float(np.mean(vals)) for vals in self.adversarial_accuracy[power_loss_weight]]

    def degradation_improvement(
        self, power_loss_weight: float, *, alpha: float = 0.05
    ) -> List[Dict[str, float]]:
        """Right-panel data: improvement over λ=0 with significance markers.

        The paper plots the *difference in accuracy degradation* between the
        power-augmented and power-free surrogates; positive values mean the
        power information made the attack more effective.
        """
        if 0.0 not in self.adversarial_accuracy:
            raise ValueError("the λ=0 baseline is required to compute improvements")
        baseline = self.adversarial_accuracy[0.0]
        candidate = self.adversarial_accuracy[power_loss_weight]
        improvements = []
        for query_index in range(len(self.query_counts)):
            base_vals = np.asarray(baseline[query_index], dtype=float)
            cand_vals = np.asarray(candidate[query_index], dtype=float)
            # degradation = clean - adversarial; improvement = degradation_power - degradation_baseline
            # which equals baseline_adv - candidate_adv.
            improvement = float(np.mean(base_vals) - np.mean(cand_vals))
            if len(base_vals) >= 2 and len(cand_vals) >= 2:
                test = independent_ttest(base_vals, cand_vals, alpha=alpha)
                p_value, significant = test.p_value, test.significant
            else:
                p_value, significant = 1.0, False
            improvements.append(
                {
                    "n_queries": float(self.query_counts[query_index]),
                    "improvement": improvement,
                    "p_value": p_value,
                    "significant": bool(significant),
                }
            )
        return improvements


@dataclass
class Figure5Result:
    """All requested rows of Figure 5."""

    scale_name: str
    rows: Dict[Tuple[str, str], Figure5Row] = field(default_factory=dict)

    def row(self, dataset: str, output_mode: str) -> Figure5Row:
        """One row of the figure."""
        return self.rows[(dataset, output_mode)]


def _run_row_seed(
    dataset_name: str,
    output_mode: str,
    scale: ExperimentScale,
    seed: int,
    attack_strength: float,
) -> Tuple[float, Dict[Tuple[float, int], Tuple[float, float]]]:
    """One independent seed of a Figure 5 row (self-contained, picklable).

    Returns the victim's clean test accuracy and a mapping
    ``(lambda, query_index) -> (surrogate_accuracy, adversarial_accuracy)``.
    Every stochastic component is seeded from ``seed`` alone, so the result
    is identical whether the seeds run serially or on a worker pool.
    """
    query_counts = tuple(int(q) for q in scale.query_counts)
    lambdas = tuple(float(l) for l in scale.power_loss_weights)
    dataset = prepare_dataset(dataset_name, scale, random_state=seed)
    # The oracles are the linear-output single-layer networks (Section IV
    # uses only the linear activation for the surrogate output loss).
    victim = prepare_model(dataset, "linear", scale, random_state=seed)
    cells: Dict[Tuple[float, int], Tuple[float, float]] = {}
    for lam in lambdas:
        config = SurrogateConfig(power_loss_weight=lam, epochs=scale.surrogate_epochs)
        for query_index, n_queries in enumerate(query_counts):
            oracle = Oracle(
                victim.network,
                output_mode=output_mode,
                expose_power=lam > 0,
                random_state=seed,
            )
            attack = SurrogateAttack(
                oracle,
                config=config,
                attack_strength=attack_strength,
                random_state=seed + 7919 * (query_index + 1),
            )
            query_inputs = dataset.query_pool(n_queries, random_state=seed + query_index)
            outcome = attack.run(query_inputs, dataset.test_inputs, dataset.test_targets)
            cells[(lam, query_index)] = (
                outcome.surrogate_test_accuracy,
                outcome.oracle_adversarial_accuracy,
            )
    return victim.test_accuracy, cells


def _run_row(
    dataset_name: str,
    output_mode: str,
    scale: ExperimentScale,
    *,
    base_seed: int,
    attack_strength: float,
    runner: Optional["ParallelRunner"] = None,
) -> Figure5Row:
    """Run the full query-count × λ sweep for one Figure 5 row."""
    query_counts = tuple(int(q) for q in scale.query_counts)
    lambdas = tuple(float(l) for l in scale.power_loss_weights)
    row = Figure5Row(
        dataset=dataset_name,
        output_mode=output_mode,
        query_counts=query_counts,
        power_loss_weights=lambdas,
        surrogate_accuracy={lam: [[] for _ in query_counts] for lam in lambdas},
        adversarial_accuracy={lam: [[] for _ in query_counts] for lam in lambdas},
    )
    seeds = seeds_for_runs(base_seed, scale.n_runs)
    args = [
        (dataset_name, output_mode, scale, seed, attack_strength) for seed in seeds
    ]
    if runner is None:
        seed_results = [_run_row_seed(*a) for a in args]
    else:
        seed_results = runner.map(_run_row_seed, args)
    clean_accuracies = []
    for clean_accuracy, cells in seed_results:
        clean_accuracies.append(clean_accuracy)
        for lam in lambdas:
            for query_index in range(len(query_counts)):
                surrogate, adversarial = cells[(lam, query_index)]
                row.surrogate_accuracy[lam][query_index].append(surrogate)
                row.adversarial_accuracy[lam][query_index].append(adversarial)
    row.oracle_clean_accuracy = float(np.mean(clean_accuracies))
    return row


def run_figure5(
    scale="bench",
    *,
    rows: Optional[Sequence[Tuple[str, str]]] = None,
    base_seed: int = 0,
    attack_strength: float = 0.1,
    runner: Optional["ParallelRunner"] = None,
) -> Figure5Result:
    """Reproduce Figure 5.

    Parameters
    ----------
    scale:
        Size preset or :class:`ExperimentScale`.
    rows:
        Which (dataset, output_mode) rows to run; defaults to all four.
    attack_strength:
        FGSM ε applied to the oracle (0.1 in the paper).
    runner:
        Optional :class:`~repro.experiments.runner.ParallelRunner`; the
        independent seeds of each row are then executed on its worker pool
        (bit-identical results, wall-clock scales with cores).
    """
    scale = resolve_scale(scale)
    if rows is None:
        rows = DEFAULT_ROWS
    result = Figure5Result(scale_name=scale.name)
    for dataset_name, output_mode in rows:
        result.rows[(dataset_name, output_mode)] = _run_row(
            dataset_name,
            output_mode,
            scale,
            base_seed=base_seed,
            attack_strength=attack_strength,
            runner=runner,
        )
    return result


def format_figure5(result: Figure5Result) -> str:
    """Render every requested row as three text panels."""
    sections = []
    for (dataset, output_mode), row in result.rows.items():
        label = ROW_LABELS.get((dataset, output_mode), f"{dataset}/{output_mode}")
        lambdas = row.power_loss_weights
        surrogate_series = {
            f"lambda={lam:g}": row.mean_surrogate_curve(lam) for lam in lambdas
        }
        adversarial_series = {
            f"lambda={lam:g}": row.mean_adversarial_curve(lam) for lam in lambdas
        }
        sections.append(
            format_series(
                "queries",
                list(row.query_counts),
                surrogate_series,
                title=f"Figure 5 {label} — surrogate test accuracy ({dataset}, {output_mode} outputs)",
            )
        )
        sections.append(
            format_series(
                "queries",
                list(row.query_counts),
                adversarial_series,
                title=(
                    f"Figure 5 {label} — oracle accuracy under transferred FGSM "
                    f"(clean accuracy {row.oracle_clean_accuracy:.3f})"
                ),
            )
        )
        improvement_lines = [
            f"Figure 5 {label} — attack-efficacy improvement over lambda=0 ('*' = p<0.05)"
        ]
        for lam in lambdas:
            if lam == 0.0:
                continue
            entries = row.degradation_improvement(lam)
            rendered = "  ".join(
                f"Q={int(e['n_queries'])}:{e['improvement']:+.3f}{'*' if e['significant'] else ' '}"
                for e in entries
            )
            improvement_lines.append(f"  lambda={lam:g}: {rendered}")
        sections.append("\n".join(improvement_lines))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - console entry point
    """Run the MNIST rows of Figure 5 at bench scale and print them."""
    result = run_figure5(
        "bench", rows=(("mnist-like", "label"), ("mnist-like", "raw"))
    )
    print(format_figure5(result))


if __name__ == "__main__":  # pragma: no cover
    main()
