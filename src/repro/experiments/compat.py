"""Deprecated legacy entry points, funnelled through one shim.

The pre-registry API exposed one ``run_*``/``format_*`` pair per paper
artefact (``run_table1``, ``run_figure3``, ...), each returning a
bespoke result type keyed by (dataset, activation)-style pairs.  The
registry (:func:`~repro.experiments.registry.run_experiments` /
``get_experiment(name).run(...)``) superseded all of them with
scenario-keyed :class:`~repro.experiments.base.ExperimentResult`, so the
wrappers now live on only for backwards compatibility: every call lands
here, emits one :class:`DeprecationWarning` pointing at the replacement,
and delegates to the registered experiment.

The shared pieces:

* :func:`run_legacy` — the generic wrapper body (resolve the experiment,
  run it, adapt the result), including the ``runner=`` translation onto a
  :class:`~repro.executor.PoolExecutor` *without* a second deprecation
  warning (one per call is enough).
* :func:`legacy_collision` — the one copy of the panel-collision error the
  per-figure ``_legacy_result`` adapters raise when two scenarios map onto
  the same legacy key (figure3/figure4 used to carry near-identical
  copies).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from repro.experiments.registry import get_experiment


def warn_legacy(name: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for one legacy entry point."""
    warnings.warn(
        f"{name} is deprecated; use {replacement} "
        "(see repro.experiments.registry.run_experiments)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def legacy_collision(experiment_name: str, key: Any, kind: str = "panel") -> ValueError:
    """The error raised when two scenarios share one legacy result key.

    Legacy result types are keyed by (dataset, activation)-style pairs, so
    such selections cannot be represented — adapters raise this instead of
    silently merging or overwriting runs.
    """
    return ValueError(
        f"two scenarios map to the same legacy {kind} {key}; use "
        f"get_experiment({experiment_name!r}).run(...) for scenario-keyed results"
    )


def run_legacy(
    experiment_name: str,
    adapter: Callable,
    *,
    wrapper: str,
    scale="bench",
    scenarios=None,
    runner=None,
    base_seed: int = 0,
    **options,
):
    """Generic body of every deprecated ``run_*`` wrapper.

    Runs the registered experiment and adapts the scenario-keyed result to
    the historical shape via ``adapter`` (the module's ``_legacy_result``).
    A passed ``runner`` maps onto a :class:`~repro.executor.PoolExecutor`
    directly — the wrapper itself already warned, so the ``runner=``
    deprecation is not emitted a second time.
    """
    from repro.executor import coerce_executor

    warn_legacy(wrapper, f"get_experiment({experiment_name!r}).run(...)", stacklevel=4)
    executor = coerce_executor(None, runner, owner=wrapper, warn=False)
    result = get_experiment(experiment_name).run(
        scale,
        scenarios=scenarios,
        executor=executor,
        base_seed=base_seed,
        **options,
    )
    return adapter(result)


def deprecated_formatter(format_fn: Callable, replacement: str) -> Callable:
    """Wrap a legacy ``format_*`` body with the deprecation warning.

    ``format_fn`` is the private ``_format_*`` body; the public name is its
    name with the leading underscore stripped.
    """
    import functools

    public_name = format_fn.__name__.lstrip("_")

    @functools.wraps(format_fn)
    def wrapper(*args, **kwargs):
        warn_legacy(f"{public_name}()", replacement)
        return format_fn(*args, **kwargs)

    wrapper.__name__ = public_name
    wrapper.__qualname__ = public_name
    return wrapper
