"""Experiment configuration objects and size presets.

The paper's experiments run on the full MNIST / CIFAR-10 datasets with up to
60 000 queries and 10 repetitions; that is hours of CPU time for the
benchmark harness, so each experiment accepts an :class:`ExperimentScale`
preset:

* ``"smoke"`` — seconds; used by the test suite.
* ``"bench"`` — tens of seconds per experiment; the default for the
  pytest-benchmark harness and the values recorded in EXPERIMENTS.md.
* ``"paper"`` — the paper's sizes (long-running).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Tuple

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DatasetConfig:
    """How to build one dataset for an experiment."""

    name: str = "mnist-like"
    n_train: int = 2000
    n_test: int = 500
    random_state: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_train, "n_train")
        check_positive_int(self.n_test, "n_test")


@dataclass(frozen=True)
class TrainingConfig:
    """How to train the victim single-layer network."""

    output: str = "softmax"
    epochs: int = 30
    learning_rate: float = 0.005
    batch_size: int = 64
    optimizer: str = "adam"

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset shared by all experiment pipelines.

    Attributes
    ----------
    name:
        Preset identifier.
    n_train / n_test:
        Dataset split sizes.
    n_runs:
        Independent repetitions (seeds) for statistics.
    train_epochs:
        Victim training epochs.
    query_counts:
        Query budgets swept in the Figure 5 experiment.
    attack_strengths:
        Attack strengths swept in the Figure 4 experiment.
    power_loss_weights:
        λ values swept in the Figure 5 experiment.
    surrogate_epochs:
        Training epochs for each surrogate model.
    """

    name: str
    n_train: int
    n_test: int
    n_runs: int
    train_epochs: int
    query_counts: Tuple[int, ...]
    attack_strengths: Tuple[float, ...]
    power_loss_weights: Tuple[float, ...]
    surrogate_epochs: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scale name must be non-empty")
        for field_name in ("n_train", "n_test", "n_runs", "train_epochs", "surrogate_epochs"):
            check_positive_int(getattr(self, field_name), field_name)
        for field_name in ("query_counts", "attack_strengths", "power_loss_weights"):
            values = getattr(self, field_name)
            if not isinstance(values, tuple):
                object.__setattr__(self, field_name, tuple(values))
                values = getattr(self, field_name)
            if len(values) == 0:
                raise ValueError(f"{field_name} must contain at least one value")
        for count in self.query_counts:
            check_positive_int(count, "query_counts entry")
        for strength in self.attack_strengths:
            if strength < 0:
                raise ValueError(f"attack_strengths must be >= 0, got {strength}")
        for weight in self.power_loss_weights:
            if weight < 0:
                raise ValueError(f"power_loss_weights must be >= 0, got {weight}")

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Return a copy with selected fields replaced (and re-validated).

        Unknown field names raise :class:`TypeError` naming the accepted
        fields; invalid values raise :class:`ValueError` through the same
        validation as construction.
        """
        known = {scale_field.name for scale_field in fields(self)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise TypeError(
                f"unknown ExperimentScale fields {unknown}; "
                f"accepted fields: {sorted(known)}"
            )
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        payload: Dict[str, Any] = {}
        for scale_field in fields(self):
            value = getattr(self, scale_field.name)
            payload[scale_field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentScale":
        """Reconstruct a scale written by :meth:`to_dict`.

        Unknown keys are rejected (same contract as
        ``ServiceConfig.from_dict``): a typo'd field in a serialised scale
        must fail loudly, not be silently dropped.
        """
        known = {scale_field.name for scale_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown ExperimentScale fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(payload)
        for key in ("query_counts", "attack_strengths", "power_loss_weights"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        n_train=400,
        n_test=100,
        n_runs=2,
        train_epochs=10,
        query_counts=(10, 50),
        attack_strengths=(0.0, 5.0, 10.0),
        power_loss_weights=(0.0, 0.01),
        surrogate_epochs=60,
    ),
    "bench": ExperimentScale(
        name="bench",
        n_train=2000,
        n_test=400,
        n_runs=3,
        train_epochs=25,
        query_counts=(10, 50, 100, 500, 1000),
        attack_strengths=(0.0, 2.0, 4.0, 6.0, 8.0, 10.0),
        power_loss_weights=(0.0, 0.002, 0.006, 0.01),
        surrogate_epochs=300,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_train=60000,
        n_test=10000,
        n_runs=10,
        train_epochs=50,
        query_counts=(2, 10, 50, 100, 500, 1000, 60000),
        attack_strengths=tuple(float(s) for s in range(0, 11)),
        power_loss_weights=(0.0, 0.002, 0.004, 0.006, 0.008, 0.01),
        surrogate_epochs=500,
    ),
}


def resolve_scale(scale) -> ExperimentScale:
    """Accept a preset name or an :class:`ExperimentScale` instance."""
    if isinstance(scale, ExperimentScale):
        return scale
    key = str(scale).lower()
    if key not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    return SCALES[key]


#: The four dataset / activation configurations evaluated throughout the paper.
PAPER_CONFIGURATIONS: Tuple[Tuple[str, str], ...] = (
    ("mnist-like", "linear"),
    ("mnist-like", "softmax"),
    ("cifar-like", "linear"),
    ("cifar-like", "softmax"),
)


#: Multi-tile placement presets registered as ``sharded-*`` scenarios:
#: ``name -> (row_shards, col_shards, reduction)``.  Kept here as plain data
#: so the shipped tile geometries are configuration, not scenario-module code;
#: :mod:`repro.experiments.scenario` turns each entry into a
#: :class:`~repro.crossbar.mapping.ShardingSpec` preset.
SHARD_PRESET_GEOMETRIES: Dict[str, Tuple[int, int, str]] = {
    "sharded-rows-2": (2, 1, "sequential"),
    "sharded-columns-4": (1, 4, "sequential"),
    "sharded-2x2": (2, 2, "sequential"),
    "sharded-4x4-tree": (4, 4, "tree"),
}


#: Per-unit-cell wire resistance (ohms) of the ``wired-crossbar`` preset —
#: the 2-D IR-drop model of
#: :attr:`~repro.crossbar.nonidealities.NonidealityConfig.wire_resistance_ohm`.
#: Calibrated so a monolithic MNIST-sized tile (10 x 785) suffers heavy
#: droop-induced leakage distortion while finer shard geometries, whose
#: shorter wires carry smaller per-wire loads, recover most of the leakage —
#: the security-vs-geometry design-space axis ``sweep-shard-geometry``
#: reports.
WIRED_CROSSBAR_OHM: float = 1e-3

#: Attacker instrument noise (relative std) of the ``wired-crossbar``
#: preset.  Nonzero so the per-shard prober's rail selection has noise to
#: reject: each rail's noise scales with that rail's own current, which is
#: what makes per-rail probing strictly better than the whole-rail attack on
#: row-sharded victims.
WIRED_CROSSBAR_PROBE_NOISE: float = 0.05


#: Service-fronted presets registered as ``service-*`` scenarios:
#: ``name -> (base scenario preset, max_batch, max_wait_ms)``.  Kept here as
#: plain data so the shipped batching policies are configuration, not
#: scenario-module code; :mod:`repro.experiments.scenario` attaches a
#: :class:`~repro.service.config.ServiceConfig` to each base preset.  The
#: noisy variant exists to exercise coalescing against *stochastic* hardware
#: physics (per-request seed streams keep it bit-identical regardless).
SERVICE_PRESET_CONFIGS: Dict[str, Tuple[str, int, float]] = {
    "service-paper": ("paper/mnist-softmax", 64, 2.0),
    "service-noisy-device": ("noisy-device", 32, 2.0),
}


#: Multi-tenant co-residency presets registered as ``tenant-*`` scenarios:
#: ``name -> (placement, max_batch, noise_budget, sharding geometry)`` with
#: the geometry a ``(row_shards, col_shards, reduction)`` tuple or ``None``
#: (single tile per layer).  Kept here as plain data so the shipped isolation
#: policies are configuration, not scenario-module code;
#: :mod:`repro.experiments.scenario` attaches a
#: :class:`~repro.service.config.ServiceConfig` (and, for the tile-isolated
#: policy, a :class:`~repro.crossbar.mapping.ShardingSpec` modelling the
#: per-tenant tile banks) to the paper base preset.  All four share one
#: ``max_batch`` so the cross-tenant-attack experiment compares placement
#: policies at equal batching capacity:
#:
#: * ``tenant-shared`` — the status-quo coalescer: strangers share rails.
#: * ``tenant-partitioned`` — per-tenant ticks on the shared rail.
#: * ``tenant-tile-isolated`` — per-tenant ticks on per-tenant tile banks
#:   (electrically disjoint rails).
#: * ``tenant-noise-budget`` — shared placement with the per-tick dummy-draw
#:   rail defence armed.
TENANT_PRESET_CONFIGS: Dict[str, Tuple[str, int, float, object]] = {
    "tenant-shared": ("shared", 8, 0.0, None),
    "tenant-partitioned": ("partitioned", 8, 0.0, None),
    "tenant-tile-isolated": ("tile-isolated", 8, 0.0, (1, 2, "sequential")),
    "tenant-noise-budget": ("shared", 8, 4.0, None),
}


#: Networked-front-end presets consumed by
#: :func:`repro.netservice.config.get_netservice_preset`:
#: ``name -> (max_batch, max_wait_ms, tenants)`` with ``tenants`` a tuple of
#: ``(tenant name, weight, query_budget)`` triples.  Kept here as plain data
#: so the shipped tenancy policies are configuration, not netservice-module
#: code, in the same style as the scenario presets above.  ``net-paper`` is
#: the single-tenant default; ``net-two-tenant`` pins the 1:3 weight split
#: the fairness tests assert; ``net-budgeted`` caps a hostile tenant's rows
#: while leaving the victim tenant unbounded (the cross-tenant-leakage
#: study's setting).
NETSERVICE_PRESET_CONFIGS: Dict[
    str, Tuple[int, float, Tuple[Tuple[str, float, object], ...]]
] = {
    "net-paper": (64, 2.0, ()),
    "net-two-tenant": (64, 2.0, (("alice", 1.0, None), ("bob", 3.0, None))),
    "net-budgeted": (32, 2.0, (("attacker", 1.0, 512), ("victim", 2.0, None))),
}


#: Built-in scenario sweeps registered as ``sweep-*`` experiments:
#: ``name -> (base scenario preset, knob path, value grid)``.  Kept here as
#: plain data so the shipped ablation grids are configuration, not
#: sweep-module code; :mod:`repro.experiments.sweep` turns each entry into a
#: registered :class:`~repro.experiments.sweep.SweepExperiment`.  Sharding
#: values are ``(row_shards, col_shards, reduction)`` tuples (``None`` = the
#: single-tile placement); ``None`` in the ADC grid is the ideal continuous
#: instrument.  Grids are ordered from the most degraded setting to the most
#: faithful one, so a healthy leakage curve rises left to right.
#: Cross-tenant isolation sweeps registered as ``sweep-tenant-*``
#: experiments by :mod:`repro.experiments.cross_tenant`: same
#: ``name -> (base scenario preset, knob path, value grid)`` shape as
#: :data:`SWEEP_PRESET_GRIDS`, but each grid point runs the co-resident
#: attack instead of the direct probing pipeline, so the curves report
#: attack advantage against the isolation knob.  Grids are ordered from the
#: most defended setting to the most exposed one, so a leaking curve rises
#: left to right: coarser per-tenant coalescing (larger ``max_batch``)
#: aggregates more victim rows per rail equation, and a larger
#: ``noise_budget`` jams every equation harder.
TENANT_SWEEP_GRIDS: Dict[str, Tuple[str, str, Tuple[object, ...]]] = {
    "sweep-tenant-coalescing": (
        "tenant-partitioned",
        "service.max_batch",
        (32, 16, 8, 4, 2),
    ),
    "sweep-tenant-noise-budget": (
        "tenant-shared",
        "service.noise_budget",
        (16.0, 8.0, 4.0, 2.0, 0.0),
    ),
}


SWEEP_PRESET_GRIDS: Dict[str, Tuple[str, str, Tuple[object, ...]]] = {
    "sweep-adc-bits": (
        "paper/mnist-softmax",
        "adc.bits",
        (1, 2, 4, 8, None),
    ),
    "sweep-read-noise": (
        "paper/mnist-softmax",
        "device.read_noise",
        (0.5, 0.2, 0.1, 0.05, 0.0),
    ),
    "sweep-power-noise-defense": (
        "power-noise-defense",
        "defense.power_noise_std",
        (2.0, 1.0, 0.5, 0.25, 0.0),
    ),
    # Ordered coarsest-to-finest *wire* geometry under the wired-crossbar
    # base: droop falls (and leakage recovers) monotonically left to right —
    # row splits barely shorten the long row wires, column splits shorten
    # them quadratically.
    "sweep-shard-geometry": (
        "wired-crossbar",
        "sharding",
        (None, (2, 1, "sequential"), (2, 2, "sequential"), (1, 4, "sequential"), (4, 4, "tree")),
    ),
}
