"""The co-resident cross-tenant attacker on the coalescing query service.

PR 5–8 built a multi-tenant service in which requests from *different*
tenants coalesce into one fused crossbar traversal.  The paper's side
channel — the total supply current of a traversal — therefore becomes a
*shared* observable: a tick's rail power is the sum over every batch-mate's
rows, so an attacker co-resident with a victim tenant can learn about the
victim's traffic from the rail even though its own API responses only ever
describe its own rows.

Threat model
------------
* The attacker rents a tenant on the same service as the victim and holds a
  probe on the accelerator's supply rail, recording one aggregate power
  value per dispatched tick (the
  :class:`~repro.service.coalescer.TickTrace` ledger).  Under
  ``tile-isolated`` placement each tenant's ticks run on its own tile bank
  with an electrically disjoint rail, so the attacker's probe only sees
  ticks on banks it can reach (:meth:`TickTrace.visible_to`).
* The attacker chooses its own probe inputs and submits them through the
  service, so under ``shared`` placement they coalesce with victim rows.
  It knows its own rows exactly and can subtract their contribution from
  any shared tick total.
* Profiling assumption (standard for side-channel evaluation): the victim's
  submitted inputs are known to the attacker.  What the attacker does *not*
  know — the secret — is the victim model's weight-column 1-norms, which
  the rail leaks through ``i_tick = Σ_rows x · G``.

Each victim-bearing, attacker-visible tick yields one linear equation
``(Σ_rows x) · G = rail_power``; :func:`estimate_victim_norms` solves the
stacked system with ridge regression
(:func:`~repro.sidechannel.estimators.estimate_column_sums_ridge`).  The
placement policy controls how well conditioned that system is:

* ``shared`` — the attacker floods single-row probes so every victim row is
  pinned in a small mixed tick; after subtracting its own known
  contribution it gets near per-row victim equations (fine-grained, well
  conditioned).
* ``partitioned`` — no mixed ticks; victim rows aggregate into whole-tick
  sums (few, coarse equations — the estimate degrades).
* ``tile-isolated`` — victim ticks are invisible to the attacker's probe;
  no equations exist and no estimate can be formed.
* ``noise_budget`` — the per-tick dummy draw jams every equation's
  right-hand side, degrading the estimate smoothly with the budget.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.coalescer import QueryService, TickTrace
from repro.sidechannel.estimators import estimate_column_sums_ridge


@dataclass(frozen=True)
class CoResidentTrace:
    """Everything the co-resident attacker recorded during one attack run.

    Attributes
    ----------
    ticks:
        The rail ledger entries *visible to the attacker's probe* (bank
        filtering already applied), in dispatch order.
    rows_by_tick:
        ``tick_id -> (n_features,) summed input vector`` over every row the
        attacker can account for in that tick: its own chosen probes plus
        the profiled victim rows.
    victim_rows_by_tick:
        ``tick_id -> number of victim rows`` (victim-bearing ticks only).
    """

    ticks: Tuple[TickTrace, ...]
    rows_by_tick: Dict[int, np.ndarray]
    victim_rows_by_tick: Dict[int, int] = field(default_factory=dict)

    @property
    def n_mixed_ticks(self) -> int:
        """Visible ticks carrying both victim rows and other tenants' rows."""
        return sum(
            1
            for tick in self.ticks
            if tick.tick_id in self.victim_rows_by_tick and len(tick.tenants) > 1
        )

    @property
    def n_victim_ticks(self) -> int:
        """Visible ticks carrying at least one victim row."""
        return len(self.victim_rows_by_tick)


@dataclass(frozen=True)
class CoResidentEstimate:
    """Outcome of the cross-tenant column-norm estimation.

    ``column_norms`` is ``None`` when the attacker observed no
    victim-bearing tick at all (tile isolation): there is no equation to
    solve and no attack can be mounted from this channel.
    """

    column_norms: Optional[np.ndarray]
    n_equations: int
    n_mixed_ticks: int
    mean_victim_rows_per_equation: float

    @property
    def mounted(self) -> bool:
        """Whether the channel produced any estimate to attack with."""
        return self.column_norms is not None


def visible_ticks(
    traces: Sequence[TickTrace], tenant: Optional[str]
) -> List[TickTrace]:
    """The ledger entries ``tenant``'s physical rail probe can observe.

    On the shared bank (``bank is None``) every tick is observable; under
    ``tile-isolated`` placement only ticks on the tenant's own bank are.
    Ticks without a power observable are useless to the probe and dropped.
    """
    return [
        tick
        for tick in traces
        if tick.visible_to(tenant) and tick.rail_power is not None
    ]


def estimate_victim_norms(
    trace: CoResidentTrace,
    n_features: int,
    *,
    regularization: float = 1e-3,
) -> CoResidentEstimate:
    """Solve the stacked shared-tick equations for the victim column norms.

    One equation per visible victim-bearing tick:
    ``(Σ_rows x) · G = rail_power`` — the attacker's own rows are part of
    the known left-hand side, which is exactly "subtracting its own
    contribution" expressed as a joint solve.  The system is solved with
    ridge regression (stable under aggregation and rail noise) and clipped
    at zero, since column conductance sums are physically non-negative.
    """
    designs: List[np.ndarray] = []
    targets: List[float] = []
    victim_rows = 0
    for tick in trace.ticks:
        if tick.tick_id not in trace.victim_rows_by_tick:
            continue  # attacker-only tick: nothing cross-tenant to learn
        summed = trace.rows_by_tick.get(tick.tick_id)
        if summed is None:
            continue
        designs.append(np.asarray(summed, dtype=float))
        targets.append(float(tick.rail_power))
        victim_rows += trace.victim_rows_by_tick[tick.tick_id]
    if not designs:
        return CoResidentEstimate(
            column_norms=None,
            n_equations=0,
            n_mixed_ticks=trace.n_mixed_ticks,
            mean_victim_rows_per_equation=0.0,
        )
    estimate = estimate_column_sums_ridge(
        np.vstack(designs),
        np.asarray(targets, dtype=float),
        regularization=regularization,
    )
    return CoResidentEstimate(
        column_norms=np.clip(estimate, 0.0, None),
        n_equations=len(designs),
        n_mixed_ticks=trace.n_mixed_ticks,
        mean_victim_rows_per_equation=victim_rows / len(designs),
    )


async def run_coresident_attack(
    service: QueryService,
    victim_inputs: np.ndarray,
    probe_inputs: np.ndarray,
    *,
    victim: str = "victim",
    attacker: str = "attacker",
) -> CoResidentTrace:
    """Drive one co-residency round through a started :class:`QueryService`.

    Victim traffic and attacker probes are submitted as interleaved
    single-row requests (the attacker times its probes against the victim's
    request stream), all awaited concurrently so the coalescer ticks them
    according to its placement policy.  Returns the attacker's view: the
    bank-filtered rail ledger plus the per-tick known-row sums.

    The service is *not* stopped — callers own its lifecycle — and the
    ledger is read after every response resolved, so each submitted row is
    attributed to exactly one dispatched tick.
    """
    victim_inputs = np.atleast_2d(np.asarray(victim_inputs, dtype=float))
    probe_inputs = np.atleast_2d(np.asarray(probe_inputs, dtype=float))
    ledger_start = len(service.tick_trace)

    tick_of: Dict[Tuple[str, int], int] = {}

    def _recorder(tenant: str, index: int):
        def on_dispatch(tick_id: int) -> None:
            tick_of[(tenant, index)] = tick_id

        return on_dispatch

    # Interleave ``ratio`` probes ahead of every victim row (the attacker's
    # flooding strategy: under shared placement this dilutes each tick down
    # to ~one victim row, pinning fine-grained equations; under tenant-
    # grouped placement the flood peels off into attacker-only ticks and
    # buys nothing — which is exactly the defence's point).
    n_victim = len(victim_inputs)
    ratio = max(1, len(probe_inputs) // n_victim) if n_victim else len(probe_inputs)
    requests = []
    cursor = 0
    for index in range(n_victim):
        for _ in range(ratio):
            if cursor < len(probe_inputs):
                requests.append((attacker, cursor, probe_inputs[cursor]))
                cursor += 1
        requests.append((victim, index, victim_inputs[index]))
    while cursor < len(probe_inputs):
        requests.append((attacker, cursor, probe_inputs[cursor]))
        cursor += 1
    await asyncio.gather(
        *(
            service.submit_traced(
                row[np.newaxis, :],
                tenant=tenant,
                on_dispatch=_recorder(tenant, index),
            )
            for tenant, index, row in requests
        )
    )

    ticks = visible_ticks(service.tick_trace[ledger_start:], attacker)
    visible_ids = {tick.tick_id for tick in ticks}
    rows_by_tick: Dict[int, np.ndarray] = {}
    victim_rows_by_tick: Dict[int, int] = {}
    for tenant, index, row in requests:
        tick_id = tick_of.get((tenant, index))
        if tick_id is None or tick_id not in visible_ids:
            continue
        if tick_id not in rows_by_tick:
            rows_by_tick[tick_id] = np.zeros(row.shape, dtype=float)
        rows_by_tick[tick_id] += row
        if tenant == victim:
            victim_rows_by_tick[tick_id] = victim_rows_by_tick.get(tick_id, 0) + 1
    return CoResidentTrace(
        ticks=tuple(ticks),
        rows_by_tick=rows_by_tick,
        victim_rows_by_tick=victim_rows_by_tick,
    )
