"""Power side-channel acquisition and analysis.

Implements the attacker's measurement apparatus: acquiring total-current
traces from the crossbar (with optional measurement noise and query
accounting), recovering the per-column conductance sums ``G_j`` via
basis-vector probing (Section II-B of the paper), estimating them from
arbitrary query sets, and locating the largest column 1-norm with fewer
probes than inputs (the search strategies sketched at the end of Section III).
"""

from repro.sidechannel.coresident import (
    CoResidentEstimate,
    CoResidentTrace,
    estimate_victim_norms,
    run_coresident_attack,
    visible_ticks,
)
from repro.sidechannel.measurement import PowerMeasurement, QueryBudgetExceeded
from repro.sidechannel.probing import ColumnNormProber, ProbeResult
from repro.sidechannel.shardprobe import PerShardProber, ShardProbeResult
from repro.sidechannel.estimators import (
    estimate_column_sums_least_squares,
    estimate_column_sums_nonnegative,
    estimate_column_sums_ridge,
)
from repro.sidechannel.search import (
    SearchResult,
    exhaustive_search,
    random_subset_search,
    greedy_neighbourhood_search,
    coarse_to_fine_search,
)

__all__ = [
    "CoResidentEstimate",
    "CoResidentTrace",
    "estimate_victim_norms",
    "run_coresident_attack",
    "visible_ticks",
    "PowerMeasurement",
    "QueryBudgetExceeded",
    "ColumnNormProber",
    "ProbeResult",
    "PerShardProber",
    "ShardProbeResult",
    "estimate_column_sums_least_squares",
    "estimate_column_sums_nonnegative",
    "estimate_column_sums_ridge",
    "SearchResult",
    "exhaustive_search",
    "random_subset_search",
    "greedy_neighbourhood_search",
    "coarse_to_fine_search",
]
