"""Attacker-side power measurement of a crossbar target.

:class:`PowerMeasurement` wraps any object exposing ``total_current(inputs)``
(a :class:`~repro.crossbar.tile.CrossbarTile` or
:class:`~repro.crossbar.accelerator.CrossbarAccelerator`) and models the
attacker's oscilloscope: additive/relative measurement noise, averaging over
repeated reads, and accounting of how many queries have been spent — the
quantity the paper trades off against attack efficacy.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_non_negative, check_positive_int


class QueryBudgetExceeded(RuntimeError):
    """Raised when a measurement would exceed the configured query budget."""


class SupportsTotalCurrent(Protocol):
    """Anything that can report a total current for input vectors."""

    def total_current(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class PowerMeasurement:
    """The attacker's view of the crossbar power rail.

    Parameters
    ----------
    target:
        Object exposing ``total_current(inputs)``.
    noise_std:
        Standard deviation of additive Gaussian measurement noise, expressed
        relative to the mean magnitude of the measured currents (e.g. ``0.01``
        = 1% noise).  This is the attacker's instrument noise, independent of
        any hardware non-ideality configured on the target.
    n_averages:
        Number of repeated reads averaged per query (averaging reduces the
        effective noise by ``sqrt(n_averages)`` but costs that many queries).
    quantization_bits:
        Resolution of the attacker's acquisition ADC, in bits; ``None``
        (default) models an ideal continuous instrument.  The instrument
        auto-ranges per acquisition: every :meth:`measure` call snaps its
        readings to ``2**bits`` uniform levels spanning that batch's observed
        range (noise included), like an oscilloscope whose vertical scale is
        fit to the trace.  A batch with zero dynamic range (including any
        single-sample read) passes through unchanged.  Note this quantizes
        the *side channel*, independently of the accelerator's own output
        ADC, which digitises functional outputs only — the supply rail an
        attacker taps is analogue.
    query_budget:
        Optional hard cap on the number of queries; exceeded measurements
        raise :class:`QueryBudgetExceeded`.
    random_state:
        Seed for the measurement noise.
    """

    def __init__(
        self,
        target: SupportsTotalCurrent,
        *,
        noise_std: float = 0.0,
        n_averages: int = 1,
        quantization_bits: Optional[int] = None,
        query_budget: Optional[int] = None,
        random_state: RandomState = None,
    ):
        self.target = target
        self.noise_std = check_non_negative(noise_std, "noise_std")
        self.n_averages = check_positive_int(n_averages, "n_averages")
        if quantization_bits is not None:
            check_positive_int(quantization_bits, "quantization_bits")
        self.quantization_bits = quantization_bits
        if query_budget is not None:
            check_positive_int(query_budget, "query_budget")
        self.query_budget = query_budget
        self._rng = as_rng(random_state)
        self._queries_used = 0

    # ----------------------------------------------------------- accounting

    @property
    def queries_used(self) -> int:
        """Total number of (averaged) reads issued so far."""
        return self._queries_used

    @property
    def queries_remaining(self) -> Optional[int]:
        """Remaining budget, or ``None`` when unbounded."""
        if self.query_budget is None:
            return None
        return max(0, self.query_budget - self._queries_used)

    def reset_counter(self) -> None:
        """Reset the query counter (e.g. between experiment repetitions)."""
        self._queries_used = 0

    def _charge(self, n_queries: int) -> None:
        if (
            self.query_budget is not None
            and self._queries_used + n_queries > self.query_budget
        ):
            raise QueryBudgetExceeded(
                f"measurement of {n_queries} queries would exceed the budget of "
                f"{self.query_budget} (already used {self._queries_used})"
            )
        self._queries_used += n_queries

    # ----------------------------------------------------------- measurement

    def measure(self, inputs: np.ndarray) -> np.ndarray:
        """Measure the total current for each input vector.

        Returns a ``(B,)`` array; a single 1-D input returns a scalar.
        """
        inputs = np.asarray(inputs, dtype=float)
        single = inputs.ndim == 1
        batch = np.atleast_2d(inputs)
        self._charge(len(batch) * self.n_averages)

        readings = np.zeros(len(batch), dtype=float)
        for _ in range(self.n_averages):
            currents = np.atleast_1d(np.asarray(self.target.total_current(batch), dtype=float))
            readings += currents
        readings /= self.n_averages

        if self.noise_std > 0:
            scale = np.mean(np.abs(readings)) if np.any(readings) else 1.0
            effective_std = self.noise_std * scale / np.sqrt(self.n_averages)
            readings = readings + self._rng.normal(0.0, effective_std, size=readings.shape)
        readings = self._quantize(readings)
        return float(readings[0]) if single else readings

    def _quantize(self, readings: np.ndarray) -> np.ndarray:
        """Snap readings to the acquisition ADC's uniform levels (auto-ranged)."""
        if self.quantization_bits is None:
            return readings
        low = float(readings.min())
        high = float(readings.max())
        if high <= low:
            return readings
        steps = 2**self.quantization_bits - 1
        span = high - low
        indices = np.rint((readings - low) / span * steps)
        return low + indices * span / steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerMeasurement(noise_std={self.noise_std}, n_averages={self.n_averages}, "
            f"queries_used={self.queries_used})"
        )
