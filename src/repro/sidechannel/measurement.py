"""Attacker-side power measurement of a crossbar target.

:class:`PowerMeasurement` wraps any object exposing ``total_current(inputs)``
(a :class:`~repro.crossbar.tile.CrossbarTile` or
:class:`~repro.crossbar.accelerator.CrossbarAccelerator`) and models the
attacker's oscilloscope: additive/relative measurement noise, averaging over
repeated reads, and accounting of how many queries have been spent — the
quantity the paper trades off against attack efficacy.
"""

from __future__ import annotations

import inspect
from typing import Optional, Protocol, Tuple, Union

import numpy as np

from repro.utils.rng import RandomState, as_rng, fold_seed, sample_stream
from repro.utils.validation import check_non_negative, check_positive_int

#: Stream-path domain tags for the instrument's own noise and for the
#: per-repeat sub-seeds handed to the target when averaging.
_INSTRUMENT_DOMAIN = 3
_INSTRUMENT_CHANNEL = 0
_AVERAGE_DOMAIN = 5


class QueryBudgetExceeded(RuntimeError):
    """Raised when a measurement would exceed the configured query budget."""


class SupportsTotalCurrent(Protocol):
    """Anything that can report a total current for input vectors."""

    def total_current(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class PowerMeasurement:
    """The attacker's view of the crossbar power rail.

    Parameters
    ----------
    target:
        Object exposing ``total_current(inputs)``.
    noise_std:
        Standard deviation of additive Gaussian measurement noise, expressed
        relative to *each measured current's own* magnitude (e.g. ``0.01``
        = 1% noise; zero readings fall back to unit scale).  The scale is
        deliberately per element, never a batch aggregate, so splitting or
        merging a batch cannot change any individual reading's noise level.
        This is the attacker's instrument noise, independent of any hardware
        non-ideality configured on the target.
    n_averages:
        Number of repeated reads averaged per query (averaging reduces the
        effective noise by ``sqrt(n_averages)`` but costs that many queries).
    quantization_bits:
        Resolution of the attacker's acquisition ADC, in bits; ``None``
        (default) models an ideal continuous instrument.  Note this quantizes
        the *side channel*, independently of the accelerator's own output
        ADC, which digitises functional outputs only — the supply rail an
        attacker taps is analogue.
    range_hint:
        How the acquisition ADC's vertical range is set; three modes:

        * ``None`` (default) — **auto-range per acquisition**: every
          :meth:`measure` call snaps its readings to ``2**bits`` uniform
          levels spanning that batch's observed range (noise included), like
          an oscilloscope whose vertical scale is fit to the trace.  A batch
          with zero dynamic range (including any single-sample read) passes
          through unchanged.  This is standalone-scope behaviour: a reading's
          quantized value depends on its batch-mates, so it is *not*
          batch-composition-invariant.
        * ``(low, high)`` — **fixed range**: every acquisition quantizes
          against the given span; out-of-range readings saturate at the rail
          values, exactly like a real ADC.  Batch-composition-invariant —
          the mode the coalescing query service uses.
        * ``"calibrate"`` — the first acquisition's observed range is frozen
          and reused by every subsequent one (auto-range once, then fixed).
          Note the calibration acquisition itself spans *its* batch, so
          batch invariance only holds for acquisitions after it; a service
          requiring bit-identity from the first request should calibrate on
          a warm-up acquisition, or use an explicit ``(low, high)``.
    query_budget:
        Optional hard cap on the number of queries; measurements that would
        exceed it raise :class:`QueryBudgetExceeded` before touching the
        target, and queries are charged only after a successful read.
    random_state:
        Seed for the measurement noise.
    """

    def __init__(
        self,
        target: SupportsTotalCurrent,
        *,
        noise_std: float = 0.0,
        n_averages: int = 1,
        quantization_bits: Optional[int] = None,
        range_hint: Union[None, str, Tuple[float, float]] = None,
        query_budget: Optional[int] = None,
        random_state: RandomState = None,
    ):
        self.target = target
        self.noise_std = check_non_negative(noise_std, "noise_std")
        self.n_averages = check_positive_int(n_averages, "n_averages")
        if quantization_bits is not None:
            check_positive_int(quantization_bits, "quantization_bits")
        self.quantization_bits = quantization_bits
        self.range_hint = self._validate_range_hint(range_hint)
        self._calibrated_range: Optional[Tuple[float, float]] = None
        if query_budget is not None:
            check_positive_int(query_budget, "query_budget")
        self.query_budget = query_budget
        self._rng = as_rng(random_state)
        self._queries_used = 0
        self._target_accepts_seeds = self._supports_sample_seeds(target)

    @staticmethod
    def _supports_sample_seeds(target) -> bool:
        """Whether ``target.total_current`` takes per-row ``sample_seeds``.

        Decided once from the signature rather than by catching
        :class:`TypeError` around the call — a TypeError raised *inside* a
        seed-capable target must propagate, not silently demote the read to
        the unseeded (batch-composition-dependent) path.
        """
        try:
            parameters = inspect.signature(target.total_current).parameters
        except (TypeError, ValueError):  # builtins without signatures
            return False
        if "sample_seeds" in parameters:
            return True
        return any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )

    @staticmethod
    def _validate_range_hint(range_hint):
        if range_hint is None:
            return None
        if isinstance(range_hint, str):
            if range_hint != "calibrate":
                raise ValueError(
                    f"range_hint must be None, 'calibrate' or a (low, high) "
                    f"pair, got {range_hint!r}"
                )
            return range_hint
        low, high = (float(value) for value in range_hint)
        if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
            raise ValueError(
                f"range_hint (low, high) must be finite with high > low, "
                f"got ({low}, {high})"
            )
        return (low, high)

    # ----------------------------------------------------------- accounting

    @property
    def queries_used(self) -> int:
        """Total number of (averaged) reads issued so far."""
        return self._queries_used

    @property
    def queries_remaining(self) -> Optional[int]:
        """Remaining budget, or ``None`` when unbounded."""
        if self.query_budget is None:
            return None
        return max(0, self.query_budget - self._queries_used)

    def reset_counter(self) -> None:
        """Reset the query counter (e.g. between experiment repetitions)."""
        self._queries_used = 0

    def _check_budget(self, n_queries: int) -> None:
        if (
            self.query_budget is not None
            and self._queries_used + n_queries > self.query_budget
        ):
            raise QueryBudgetExceeded(
                f"measurement of {n_queries} queries would exceed the budget of "
                f"{self.query_budget} (already used {self._queries_used})"
            )

    # ----------------------------------------------------------- measurement

    def _target_current(self, batch: np.ndarray, seeds, repeat: int) -> np.ndarray:
        """One read of the target, with per-repeat sub-seeds when seeded.

        Targets whose ``total_current`` does not take ``sample_seeds`` (e.g.
        a plain linear stub) are read unseeded: their current is
        deterministic per row, so the shared path is already batch-invariant.
        """
        if seeds is not None and self._target_accepts_seeds:
            if self.n_averages > 1:
                seeds = np.array(
                    [fold_seed(seed, _AVERAGE_DOMAIN, repeat) for seed in seeds],
                    dtype=np.uint64,
                )
            currents = self.target.total_current(batch, sample_seeds=seeds)
        else:
            currents = self.target.total_current(batch)
        return np.atleast_1d(np.asarray(currents, dtype=float))

    def measure(self, inputs: np.ndarray, *, seeds=None) -> np.ndarray:
        """Measure the total current for each input vector.

        Returns a ``(B,)`` array; a single 1-D input returns a scalar.

        ``seeds`` (one ``uint64`` per input row, see
        :func:`~repro.utils.rng.derive_request_seeds`) keys both the target's
        stochastic effects and this instrument's own noise on the row's seed,
        making each reading independent of batch composition — combine with a
        fixed ``range_hint=(low, high)`` (or a ``"calibrate"`` instrument
        whose calibration acquisition already happened) for a fully
        batch-invariant acquisition, as the coalescing query service
        requires.
        """
        inputs = np.asarray(inputs, dtype=float)
        single = inputs.ndim == 1
        batch = np.atleast_2d(inputs)
        if seeds is not None:
            seeds = np.asarray(seeds, dtype=np.uint64)
            if seeds.ndim != 1 or len(seeds) != len(batch):
                raise ValueError(
                    f"seeds must be 1-D with one entry per input row "
                    f"({len(batch)}), got shape {seeds.shape}"
                )
        self._check_budget(len(batch) * self.n_averages)

        readings = np.zeros(len(batch), dtype=float)
        for repeat in range(self.n_averages):
            readings += self._target_current(batch, seeds, repeat)
        readings /= self.n_averages

        if self.noise_std > 0:
            scale = np.abs(readings)
            scale = np.where(scale > 0, scale, 1.0)
            effective_std = self.noise_std * scale / np.sqrt(self.n_averages)
            if seeds is None:
                noise = self._rng.normal(0.0, 1.0, size=readings.shape)
            else:
                noise = np.array(
                    [
                        sample_stream(
                            seed, _INSTRUMENT_DOMAIN, _INSTRUMENT_CHANNEL
                        ).normal()
                        for seed in seeds
                    ]
                )
            readings = readings + effective_std * noise
        readings = self._quantize(readings)
        # Charge only after the target read succeeded: a failing traversal
        # must not consume budget.
        self._queries_used += len(batch) * self.n_averages
        return float(readings[0]) if single else readings

    def _acquisition_range(self, readings: np.ndarray) -> Tuple[float, float]:
        """Resolve the ADC span for one acquisition (see ``range_hint``)."""
        if isinstance(self.range_hint, tuple):
            return self.range_hint
        if self.range_hint == "calibrate":
            if self._calibrated_range is None:
                self._calibrated_range = (
                    float(readings.min()),
                    float(readings.max()),
                )
            return self._calibrated_range
        return float(readings.min()), float(readings.max())

    def _quantize(self, readings: np.ndarray) -> np.ndarray:
        """Snap readings to the acquisition ADC's uniform levels.

        Auto-range mode spans the batch's own min/max; fixed-range and
        calibrated modes quantize against a batch-independent span and
        saturate out-of-range readings at the rails.
        """
        if self.quantization_bits is None:
            return readings
        low, high = self._acquisition_range(readings)
        if high <= low:
            return readings
        steps = 2**self.quantization_bits - 1
        span = high - low
        indices = np.clip(np.rint((readings - low) / span * steps), 0, steps)
        return low + indices * span / steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerMeasurement(noise_std={self.noise_std}, n_averages={self.n_averages}, "
            f"queries_used={self.queries_used})"
        )
