"""Estimating column conductance sums from arbitrary power queries.

Basis-vector probing (one query per input) is the simplest way to recover the
column sums ``G_j``, but an attacker who measures the power channel while the
device processes *arbitrary* inputs ``u_q`` observes only
``i_q = Σ_j u_qj G_j``.  Recovering ``G`` then becomes a linear inverse
problem; these estimators solve it with plain least squares, non-negative
least squares (conductance sums are physically non-negative) or ridge
regression for under-determined / noisy query sets.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.utils.validation import check_matrix, check_non_negative, check_vector


def _validate(queries: np.ndarray, currents: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    queries = check_matrix(queries, "queries")
    currents = check_vector(currents, "currents", length=queries.shape[0])
    return queries, currents


def estimate_column_sums_least_squares(
    queries: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Ordinary least-squares estimate of ``G`` from ``queries @ G = currents``.

    Parameters
    ----------
    queries:
        ``(Q, N)`` matrix of the input vectors applied while measuring.
    currents:
        ``(Q,)`` measured total currents.

    Returns
    -------
    np.ndarray
        ``(N,)`` estimated column conductance sums (minimum-norm solution when
        the system is under-determined).
    """
    queries, currents = _validate(queries, currents)
    solution, *_ = np.linalg.lstsq(queries, currents, rcond=None)
    return solution


def estimate_column_sums_nonnegative(
    queries: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Non-negative least-squares estimate (conductance sums cannot be negative)."""
    queries, currents = _validate(queries, currents)
    solution, _ = optimize.nnls(queries, currents)
    return solution


def estimate_column_sums_ridge(
    queries: np.ndarray, currents: np.ndarray, *, regularization: float = 1e-3
) -> np.ndarray:
    """Ridge-regularised estimate, stable for noisy or few queries.

    Solves ``(A^T A + λ I) g = A^T i``.
    """
    queries, currents = _validate(queries, currents)
    check_non_negative(regularization, "regularization")
    n_features = queries.shape[1]
    gram = queries.T @ queries + regularization * np.eye(n_features)
    return np.linalg.solve(gram, queries.T @ currents)


def estimation_error(true_sums: np.ndarray, estimated_sums: np.ndarray) -> float:
    """Relative L2 error between true and estimated column sums."""
    true_sums = check_vector(true_sums, "true_sums")
    estimated_sums = check_vector(estimated_sums, "estimated_sums", length=len(true_sums))
    denom = np.linalg.norm(true_sums)
    if denom == 0:
        return float(np.linalg.norm(estimated_sums))
    return float(np.linalg.norm(true_sums - estimated_sums) / denom)
