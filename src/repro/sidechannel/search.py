"""Query-efficient search for the input with the largest column 1-norm.

The end of Section III notes that probing every input costs N queries, and
that when the 1-norm map is spatially smooth (MNIST) the maximum could be
located with fewer queries using standard search strategies, whereas a
rapidly varying map (CIFAR-10) makes that hard.  This module implements the
strategies needed to study that trade-off:

* :func:`exhaustive_search` — probe everything (the baseline, always correct).
* :func:`random_subset_search` — probe a random subset of the inputs.
* :func:`greedy_neighbourhood_search` — hill-climb over the image grid from a
  few random restarts, exploiting smoothness.
* :func:`coarse_to_fine_search` — probe a coarse grid, then refine around the
  best coarse cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.sidechannel.probing import ColumnNormProber
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int


@dataclass
class SearchResult:
    """Outcome of a max-column-norm search.

    Attributes
    ----------
    best_index:
        Flat input index believed to carry the largest column 1-norm.
    best_value:
        The conductance sum measured at that index.
    queries_used:
        Number of power queries spent.
    probed_indices:
        All indices that were probed during the search.
    """

    best_index: int
    best_value: float
    queries_used: int
    probed_indices: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.probed_indices = np.asarray(self.probed_indices, dtype=int)


def _probe(prober: ColumnNormProber, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Probe indices, returning (indices, values)."""
    result = prober.probe_indices(indices)
    return result.indices, result.column_sums


def exhaustive_search(prober: ColumnNormProber) -> SearchResult:
    """Probe every input column and return the maximum (N queries)."""
    result = prober.probe_all()
    return SearchResult(
        best_index=result.argmax(),
        best_value=float(result.column_sums.max()),
        queries_used=result.queries_used,
        probed_indices=result.indices,
        metadata={"strategy": "exhaustive"},
    )


def random_subset_search(
    prober: ColumnNormProber,
    budget: int,
    *,
    random_state: RandomState = None,
) -> SearchResult:
    """Probe a uniformly random subset of ``budget`` columns."""
    check_positive_int(budget, "budget")
    budget = min(budget, prober.n_inputs)
    rng = as_rng(random_state)
    indices = rng.choice(prober.n_inputs, size=budget, replace=False)
    probed_idx, values = _probe(prober, indices)
    best = int(np.argmax(values))
    return SearchResult(
        best_index=int(probed_idx[best]),
        best_value=float(values[best]),
        queries_used=len(probed_idx),
        probed_indices=probed_idx,
        metadata={"strategy": "random_subset", "budget": budget},
    )


def _grid_neighbours(index: int, image_shape: Tuple[int, int]) -> list[int]:
    """4-connected neighbours of a flat index in an image grid."""
    height, width = image_shape
    row, col = divmod(index, width)
    neighbours = []
    for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        n_row, n_col = row + d_row, col + d_col
        if 0 <= n_row < height and 0 <= n_col < width:
            neighbours.append(n_row * width + n_col)
    return neighbours


def greedy_neighbourhood_search(
    prober: ColumnNormProber,
    image_shape: Tuple[int, int],
    *,
    budget: int = 100,
    n_restarts: int = 4,
    random_state: RandomState = None,
) -> SearchResult:
    """Hill-climb over the image grid from random restarts.

    Effective when the 1-norm map changes smoothly over the image plane (the
    MNIST-like case); much less effective on rapidly varying maps.
    """
    check_positive_int(budget, "budget")
    check_positive_int(n_restarts, "n_restarts")
    height, width = image_shape
    if height * width != prober.n_inputs:
        raise ValueError(
            f"image_shape {image_shape} does not cover {prober.n_inputs} inputs"
        )
    rng = as_rng(random_state)

    known: dict[int, float] = {}
    queries_before = prober.measurement.queries_used

    def value_of(indices: list[int]) -> None:
        """Probe any indices not yet measured (respecting the budget)."""
        unknown = [i for i in indices if i not in known]
        remaining = budget - (prober.measurement.queries_used - queries_before)
        unknown = unknown[: max(0, remaining)]
        if unknown:
            probed_idx, values = _probe(prober, unknown)
            known.update(dict(zip(probed_idx.tolist(), values.tolist())))

    starts = rng.choice(prober.n_inputs, size=min(n_restarts, prober.n_inputs), replace=False)
    value_of(list(starts))
    for start in starts:
        current = int(start)
        while True:
            if prober.measurement.queries_used - queries_before >= budget:
                break
            neighbours = _grid_neighbours(current, (height, width))
            value_of(neighbours)
            candidates = [n for n in neighbours if n in known]
            if not candidates:
                break
            best_neighbour = max(candidates, key=lambda n: known[n])
            if known.get(best_neighbour, -np.inf) > known.get(current, -np.inf):
                current = best_neighbour
            else:
                break

    best_index = max(known, key=known.get)
    return SearchResult(
        best_index=int(best_index),
        best_value=float(known[best_index]),
        queries_used=prober.measurement.queries_used - queries_before,
        probed_indices=np.asarray(sorted(known), dtype=int),
        metadata={"strategy": "greedy_neighbourhood", "budget": budget, "n_restarts": n_restarts},
    )


def coarse_to_fine_search(
    prober: ColumnNormProber,
    image_shape: Tuple[int, int],
    *,
    coarse_stride: int = 4,
    refine_radius: int = 2,
) -> SearchResult:
    """Probe a coarse grid, then densely refine around the best coarse point."""
    check_positive_int(coarse_stride, "coarse_stride")
    check_positive_int(refine_radius, "refine_radius")
    height, width = image_shape
    if height * width != prober.n_inputs:
        raise ValueError(
            f"image_shape {image_shape} does not cover {prober.n_inputs} inputs"
        )
    queries_before = prober.measurement.queries_used

    coarse_rows = np.arange(coarse_stride // 2, height, coarse_stride)
    coarse_cols = np.arange(coarse_stride // 2, width, coarse_stride)
    coarse_indices = [int(r * width + c) for r in coarse_rows for c in coarse_cols]
    probed_idx, values = _probe(prober, coarse_indices)
    best_flat = int(probed_idx[int(np.argmax(values))])
    best_row, best_col = divmod(best_flat, width)

    refine_indices = []
    for row in range(max(0, best_row - refine_radius), min(height, best_row + refine_radius + 1)):
        for col in range(max(0, best_col - refine_radius), min(width, best_col + refine_radius + 1)):
            index = row * width + col
            if index not in set(probed_idx.tolist()):
                refine_indices.append(index)
    all_indices = probed_idx.tolist()
    all_values = values.tolist()
    if refine_indices:
        refined_idx, refined_values = _probe(prober, refine_indices)
        all_indices.extend(refined_idx.tolist())
        all_values.extend(refined_values.tolist())

    best = int(np.argmax(all_values))
    return SearchResult(
        best_index=int(all_indices[best]),
        best_value=float(all_values[best]),
        queries_used=prober.measurement.queries_used - queries_before,
        probed_indices=np.asarray(sorted(all_indices), dtype=int),
        metadata={
            "strategy": "coarse_to_fine",
            "coarse_stride": coarse_stride,
            "refine_radius": refine_radius,
        },
    )
