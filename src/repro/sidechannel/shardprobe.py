"""Per-shard column-norm probing of multi-rail crossbar victims.

The paper's probing attack (Section II-B) reads the *one* shared supply rail
of a monolithic crossbar.  On a sharded accelerator every physical tile has
its own rail, and an attacker who can observe them individually
(:class:`~repro.attacks.oracle.Oracle` with ``expose_per_tile_power=True``)
recovers strictly more than the whole-rail attacker: for a basis-vector
probe of input column ``j`` only the rails of the column-shard *owning*
``j`` carry signal, so summing just those rails discards the measurement
noise of every other rail.  Each rail's instrument noise scales with that
rail's own current, so splitting the signal over ``R`` row-shard rails also
averages ``R`` independent draws where the whole rail gets a single draw on
the full magnitude — the per-shard estimate is never noisier and strictly
better whenever more than one rail exists on the probed layer's grid.

:class:`PerShardProber` mounts exactly the whole-rail prober's probe set —
one all-zero baseline row plus one basis vector per input column, submitted
as a single batched query — and reads *both* channels of the one response:
the per-rail currents (per-shard estimate) and the summed total (the
whole-rail estimate the paper's attacker would see).  Both estimates
therefore derive from identical hardware traversals and identical noise
realizations, which is what makes their comparison a pure measurement of
the extra information in the per-tile channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.crossbar.mapping import ShardingSpec
from repro.crossbar.power import layer_rail_grid
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PerShardProber", "ShardProbeResult"]


@dataclass
class ShardProbeResult:
    """Both estimates recovered from one per-rail probe session.

    Attributes
    ----------
    indices:
        The probed logical input columns (``0 .. N-1``).
    per_shard_norms:
        Column-sum estimates built from the owning rails only.
    whole_rail_norms:
        Column-sum estimates built from the summed total current — the
        paper's single-rail attacker, measured on the *same* queries.
    grid:
        ``(row_shards, col_shards)`` rail grid of the probed layer.
    queries_used:
        Power queries spent producing both estimates.
    """

    indices: np.ndarray
    per_shard_norms: np.ndarray
    whole_rail_norms: np.ndarray
    grid: tuple
    queries_used: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=int)
        self.per_shard_norms = np.asarray(self.per_shard_norms, dtype=float)
        self.whole_rail_norms = np.asarray(self.whole_rail_norms, dtype=float)
        if not (
            self.indices.shape
            == self.per_shard_norms.shape
            == self.whole_rail_norms.shape
        ):
            raise ValueError(
                "indices, per_shard_norms and whole_rail_norms must have the "
                "same shape"
            )

    @property
    def n_rails(self) -> int:
        """Number of individually observed rails on the probed layer."""
        return int(self.grid[0]) * int(self.grid[1])


class PerShardProber:
    """Recovers column norms from individually observable shard rails.

    Parameters
    ----------
    oracle:
        An :class:`~repro.attacks.oracle.Oracle` built with
        ``expose_per_tile_power=True``; its query responses must carry
        ``per_tile_power`` and ``metadata["tile_labels"]``.
    n_inputs:
        Logical input dimensionality ``N`` of the target.
    layer:
        Index of the layer whose rails are attacked (the paper's victim is
        layer 0).
    drive_voltage:
        Voltage applied to the probed line (the paper's normalised Vdd).
    has_bias_column:
        Whether the target layer carries a trailing bias column on its
        physical tiles.  The bias line is driven on every query — including
        the baseline — so its contribution cancels out of both estimates;
        the flag only affects which column-shard owns each *logical* column
        when the physical width is ``N + 1``.
    """

    def __init__(
        self,
        oracle,
        n_inputs: int,
        *,
        layer: int = 0,
        drive_voltage: float = 1.0,
        has_bias_column: bool = False,
    ):
        if not getattr(oracle, "expose_per_tile_power", False):
            raise ValueError(
                "PerShardProber requires an oracle with "
                "expose_per_tile_power=True (per-rail currents observable)"
            )
        self.oracle = oracle
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")
        self.layer = int(layer)
        self.drive_voltage = check_positive(drive_voltage, "drive_voltage")
        self.has_bias_column = bool(has_bias_column)

    # ------------------------------------------------------------------ api

    def _column_owner(self, col_shards: int) -> np.ndarray:
        """Owning column-shard index for every logical input column."""
        n_physical = self.n_inputs + (1 if self.has_bias_column else 0)
        sections = ShardingSpec(1, col_shards).column_sections(n_physical)
        owner = np.empty(n_physical, dtype=int)
        for shard, columns in enumerate(sections):
            owner[columns] = shard
        return owner[: self.n_inputs]

    def probe_all(self) -> ShardProbeResult:
        """One batched probe round: baseline + every basis vector.

        Returns both the per-shard and the whole-rail estimate recovered
        from the same response (``N + 1`` queries total).
        """
        probes = np.zeros((self.n_inputs + 1, self.n_inputs), dtype=float)
        probes[np.arange(1, self.n_inputs + 1), np.arange(self.n_inputs)] = (
            self.drive_voltage
        )
        queries_before = self.oracle.queries_used
        response = self.oracle.query(probes)
        if response.per_tile_power is None:
            raise ValueError(
                "oracle response carries no per-tile power; the target does "
                "not expose individual rails"
            )
        labels = response.metadata.get("tile_labels")
        if labels is None:
            raise ValueError("oracle response carries no tile labels")

        grid, columns = layer_rail_grid(labels, self.layer)
        rails = response.per_tile_power[:, columns.ravel()].reshape(
            (len(probes),) + columns.shape
        )
        # Per-rail baseline subtraction removes every constant contribution
        # (g_min offsets, the always-driven bias column) rail by rail.
        rail_signal = rails[1:] - rails[0]
        total_signal = response.power[1:] - response.power[0]

        owner = self._column_owner(grid[1])
        # Column j's probe excites only the owning column-shard's rails; sum
        # its row-shard partial currents and discard every other rail.
        per_shard = (
            rail_signal[np.arange(self.n_inputs), :, owner].sum(axis=1)
            / self.drive_voltage
        )
        whole_rail = total_signal / self.drive_voltage
        return ShardProbeResult(
            indices=np.arange(self.n_inputs),
            per_shard_norms=per_shard,
            whole_rail_norms=whole_rail,
            grid=grid,
            queries_used=self.oracle.queries_used - queries_before,
            metadata={"layer": self.layer, "tile_labels": tuple(labels)},
        )
