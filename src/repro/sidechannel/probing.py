"""Basis-vector probing of the crossbar power channel.

Section II-B of the paper: "setting ``v_u1 = Vdd`` and grounding all other
inputs leads to ``G_1 = i_total / Vdd``".  Repeating for every input recovers
all column conductance sums, which under the min-power mapping are affine in
the column 1-norms of the weight matrix.  The prober also measures the
all-zero input to remove the affine offset contributed by ``g_min`` devices.

The prober is fully batched: all basis vectors of one
:meth:`ColumnNormProber.probe_indices` call — *including* the optional
all-zero baseline probe, which previously went out as a separate
:meth:`~repro.sidechannel.measurement.PowerMeasurement.measure` call — are
submitted as a single batched query, so the target hardware realises its
conductance state once per probe round.  ``batched=False`` selects a
per-column reference mode (one query per probe vector plus a separate
baseline query), modelling an attacker whose instrument can only issue
scalar queries; it exists for equivalence testing and for quantifying what
batching buys.  Both modes charge the same number of queries against the
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.sidechannel.measurement import PowerMeasurement
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class ProbeResult:
    """Result of probing a set of input columns.

    Attributes
    ----------
    indices:
        The probed column indices.
    column_sums:
        Estimated conductance sums ``G_j`` for those columns (offset-corrected
        when a baseline probe was taken).
    baseline:
        The measured current for the all-zero input (0 for an ideal crossbar).
    queries_used:
        Number of power queries spent producing this result.
    """

    indices: np.ndarray
    column_sums: np.ndarray
    baseline: float
    queries_used: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=int)
        self.column_sums = np.asarray(self.column_sums, dtype=float)
        if self.indices.shape != self.column_sums.shape:
            raise ValueError("indices and column_sums must have the same shape")

    def full_vector(self, n_inputs: int, fill_value: float = np.nan) -> np.ndarray:
        """Expand to a length-``n_inputs`` vector with unknown entries filled."""
        vector = np.full(n_inputs, fill_value, dtype=float)
        vector[self.indices] = self.column_sums
        return vector

    def argmax(self) -> int:
        """Index (into the original input space) of the largest probed sum."""
        return int(self.indices[int(np.argmax(self.column_sums))])

    def ranking(self) -> np.ndarray:
        """Probed indices ordered from largest to smallest conductance sum."""
        order = np.argsort(self.column_sums)[::-1]
        return self.indices[order]


class ColumnNormProber:
    """Recovers column conductance sums through basis-vector power queries.

    Parameters
    ----------
    measurement:
        A :class:`~repro.sidechannel.measurement.PowerMeasurement` wrapping
        the target crossbar.
    n_inputs:
        Input dimensionality N of the target.
    drive_voltage:
        The voltage applied to the probed line (the paper's Vdd, 1.0 in the
        normalised formulation).
    measure_baseline:
        Whether to spend one extra query on the all-zero input so the
        ``g_min`` offset can be subtracted.  For the ideal device the baseline
        is zero and this is unnecessary.
    batched:
        ``True`` (default) submits every probe vector of a round — plus the
        baseline — as one batched query; ``False`` uses a per-column
        reference loop (one scalar query per probe vector).  Both cost the
        same query budget.
    """

    def __init__(
        self,
        measurement: PowerMeasurement,
        n_inputs: int,
        *,
        drive_voltage: float = 1.0,
        measure_baseline: bool = False,
        batched: bool = True,
    ):
        self.measurement = measurement
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")
        self.drive_voltage = check_positive(drive_voltage, "drive_voltage")
        self.measure_baseline = bool(measure_baseline)
        self.batched = bool(batched)

    # ------------------------------------------------------------------ api

    def _baseline(self) -> float:
        if not self.measure_baseline:
            return 0.0
        zero = np.zeros(self.n_inputs)
        return float(self.measurement.measure(zero))

    def _basis_vectors(self, indices: np.ndarray) -> np.ndarray:
        probes = np.zeros((len(indices), self.n_inputs), dtype=float)
        probes[np.arange(len(indices)), indices] = self.drive_voltage
        return probes

    def _measure_batched(self, indices: np.ndarray) -> tuple[np.ndarray, float]:
        """All probes (and the baseline) as one batched power query."""
        probes = self._basis_vectors(indices)
        if self.measure_baseline:
            probes = np.concatenate(
                [np.zeros((1, self.n_inputs), dtype=float), probes], axis=0
            )
        currents = np.atleast_1d(self.measurement.measure(probes))
        if self.measure_baseline:
            return currents[1:], float(currents[0])
        return currents, 0.0

    def _measure_looped(self, indices: np.ndarray) -> tuple[np.ndarray, float]:
        """Reference path: one query per probed column, separate baseline query."""
        baseline = self._baseline()
        probes = self._basis_vectors(indices)
        currents = np.array(
            [float(self.measurement.measure(probe)) for probe in probes]
        )
        return currents, baseline

    def probe_indices(self, indices: Sequence[int]) -> ProbeResult:
        """Probe a subset of input columns; one query per column."""
        indices = np.asarray(list(indices), dtype=int)
        if indices.size == 0:
            raise ValueError("indices must not be empty")
        if indices.min() < 0 or indices.max() >= self.n_inputs:
            raise ValueError(
                f"indices must lie in [0, {self.n_inputs}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        queries_before = self.measurement.queries_used
        if self.batched:
            currents, baseline = self._measure_batched(indices)
        else:
            currents, baseline = self._measure_looped(indices)
        column_sums = (currents - baseline) / self.drive_voltage
        return ProbeResult(
            indices=indices,
            column_sums=column_sums,
            baseline=baseline,
            queries_used=self.measurement.queries_used - queries_before,
        )

    def probe_all(self) -> ProbeResult:
        """Probe every input column (N queries, plus one optional baseline)."""
        return self.probe_indices(np.arange(self.n_inputs))

    def estimate_column_norms(self, reference_weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Probe everything and return values proportional to the column 1-norms.

        When ``reference_weights`` is given the result is rescaled so that its
        maximum matches the true maximum column 1-norm, which is convenient
        for correlation analyses; the attack itself only needs the ordering,
        which rescaling does not change.
        """
        result = self.probe_all()
        sums = result.column_sums
        if reference_weights is None:
            return sums
        reference = np.abs(np.asarray(reference_weights, dtype=float)).sum(axis=0)
        peak = sums.max()
        if peak <= 0:
            return sums
        return sums * (reference.max() / peak)
