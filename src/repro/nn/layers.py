"""Network layers.

Only dense (fully-connected) layers are needed to reproduce the paper, which
studies single-layer networks ``y = f(W u)``.  The layer stores its weight
matrix in the paper's orientation, ``W`` of shape ``(outputs, inputs)``, so
that a crossbar mapping of the layer is a direct transcription of Figure 2.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import Initializer, XavierUniform, Zeros, get_initializer
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix, check_positive_int


class Dense:
    """Fully-connected layer ``x -> f(W x + b)``.

    Parameters
    ----------
    n_inputs:
        Input dimensionality ``N``.
    n_outputs:
        Output dimensionality ``M``.
    activation:
        Activation name or instance (default linear).
    use_bias:
        Whether to include a bias vector.  The paper's crossbar formulation has
        no bias term, so experiments default to ``False``; the option exists
        for general use.
    weight_initializer / bias_initializer:
        Initializer names or instances.
    random_state:
        Seed or generator used for initialization.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        *,
        activation="linear",
        use_bias: bool = False,
        weight_initializer: Optional[Initializer] = None,
        bias_initializer: Optional[Initializer] = None,
        random_state: RandomState = None,
    ):
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")
        self.n_outputs = check_positive_int(n_outputs, "n_outputs")
        self.activation: Activation = get_activation(activation)
        self.use_bias = bool(use_bias)

        rng = as_rng(random_state)
        weight_init = (
            get_initializer(weight_initializer)
            if weight_initializer is not None
            else XavierUniform()
        )
        bias_init = (
            get_initializer(bias_initializer) if bias_initializer is not None else Zeros()
        )
        self.weights = weight_init((self.n_outputs, self.n_inputs), rng)
        self.bias = bias_init((self.n_outputs,), rng) if self.use_bias else None

        # caches populated by forward(), consumed by backward()
        self._cache_input: Optional[np.ndarray] = None
        self._cache_pre_activation: Optional[np.ndarray] = None
        self._cache_output: Optional[np.ndarray] = None

        # gradients populated by backward(), consumed by optimizers
        self.grad_weights: Optional[np.ndarray] = None
        self.grad_bias: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable parameters keyed by name."""
        params = {"weights": self.weights}
        if self.use_bias:
            params["bias"] = self.bias
        return params

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        """Parameter gradients from the most recent backward pass."""
        grads = {"weights": self.grad_weights}
        if self.use_bias:
            grads["bias"] = self.grad_bias
        return grads

    def set_weights(self, weights: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        """Overwrite the layer parameters (used when loading trained models)."""
        weights = check_matrix(weights, "weights", shape=(self.n_outputs, self.n_inputs))
        self.weights = weights.astype(float).copy()
        if bias is not None:
            bias = np.asarray(bias, dtype=float)
            if bias.shape != (self.n_outputs,):
                raise ValueError(
                    f"bias must have shape ({self.n_outputs},), got {bias.shape}"
                )
            if not self.use_bias:
                raise ValueError("layer was constructed with use_bias=False")
            self.bias = bias.copy()

    # -------------------------------------------------------------- forward

    def pre_activation(self, inputs: np.ndarray) -> np.ndarray:
        """Compute ``s = W x (+ b)`` without the activation."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected inputs with {self.n_inputs} features, got {inputs.shape[1]}"
            )
        pre = inputs @ self.weights.T
        if self.use_bias:
            pre = pre + self.bias
        return pre

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Forward pass for a batch ``(B, N)``; returns ``(B, M)``."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        pre = self.pre_activation(inputs)
        output = self.activation.forward(pre)
        if training:
            self._cache_input = inputs
            self._cache_pre_activation = pre
            self._cache_output = output
        return output

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------- backward

    def backward(
        self, grad_output: np.ndarray, *, skip_activation: bool = False
    ) -> np.ndarray:
        """Back-propagate through the layer.

        Parameters
        ----------
        grad_output:
            Gradient of the loss with respect to the layer output (or with
            respect to the pre-activation when ``skip_activation`` is True —
            used by the fused softmax/cross-entropy path).

        Returns
        -------
        np.ndarray
            Gradient of the loss with respect to the layer input.
        """
        if self._cache_input is None:
            raise RuntimeError("backward() called before forward(training=True)")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=float))
        if skip_activation:
            grad_pre = grad_output
        else:
            grad_pre = self.activation.backward(grad_output, self._cache_output)
        self.grad_weights = grad_pre.T @ self._cache_input
        if self.use_bias:
            self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weights

    def zero_gradients(self) -> None:
        """Clear cached gradients."""
        self.grad_weights = None
        self.grad_bias = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dense(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, "
            f"activation={self.activation.name!r}, use_bias={self.use_bias})"
        )
