"""Gradient-based optimizers.

The paper trains its single-layer networks with ordinary stochastic gradient
descent; Momentum and Adam are provided because the surrogate-training
experiments converge noticeably faster with Adam at no cost to fidelity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

from repro.nn.network import Sequential
from repro.utils.validation import check_non_negative, check_positive


class Optimizer(ABC):
    """Base class: updates a network in place from its stored gradients."""

    name: str = "optimizer"

    def __init__(self, learning_rate: float = 0.01):
        self.learning_rate = check_positive(learning_rate, "learning_rate")

    @abstractmethod
    def step(self, network: Sequential) -> None:
        """Apply one update using the gradients stored on the network layers."""

    def reset(self) -> None:
        """Clear any internal state (momentum buffers, step counters)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    name = "sgd"

    def __init__(self, learning_rate: float = 0.01, weight_decay: float = 0.0):
        super().__init__(learning_rate)
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")

    def step(self, network: Sequential) -> None:
        for layer in network.layers:
            if layer.grad_weights is None:
                raise RuntimeError("optimizer step requires gradients; call backward first")
            grad = layer.grad_weights
            if self.weight_decay:
                grad = grad + self.weight_decay * layer.weights
            layer.weights -= self.learning_rate * grad
            if layer.use_bias and layer.grad_bias is not None:
                layer.bias -= self.learning_rate * layer.grad_bias


class Momentum(Optimizer):
    """SGD with classical momentum."""

    name = "momentum"

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def reset(self) -> None:
        self._velocity.clear()

    def step(self, network: Sequential) -> None:
        for index, layer in enumerate(network.layers):
            if layer.grad_weights is None:
                raise RuntimeError("optimizer step requires gradients; call backward first")
            state = self._velocity.setdefault(index, {})
            grad_w = layer.grad_weights
            if self.weight_decay:
                grad_w = grad_w + self.weight_decay * layer.weights
            vel_w = state.get("weights", np.zeros_like(layer.weights))
            vel_w = self.momentum * vel_w - self.learning_rate * grad_w
            state["weights"] = vel_w
            layer.weights += vel_w
            if layer.use_bias and layer.grad_bias is not None:
                vel_b = state.get("bias", np.zeros_like(layer.bias))
                vel_b = self.momentum * vel_b - self.learning_rate * layer.grad_bias
                state["bias"] = vel_b
                layer.bias += vel_b


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self._moments: Dict[int, Dict[str, np.ndarray]] = {}
        self._step_count = 0

    def reset(self) -> None:
        self._moments.clear()
        self._step_count = 0

    def _update(self, state: Dict[str, np.ndarray], key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = state.get(f"m_{key}", np.zeros_like(param))
        v = state.get(f"v_{key}", np.zeros_like(param))
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad**2
        state[f"m_{key}"] = m
        state[f"v_{key}"] = v
        m_hat = m / (1.0 - self.beta1**self._step_count)
        v_hat = v / (1.0 - self.beta2**self._step_count)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def step(self, network: Sequential) -> None:
        self._step_count += 1
        for index, layer in enumerate(network.layers):
            if layer.grad_weights is None:
                raise RuntimeError("optimizer step requires gradients; call backward first")
            state = self._moments.setdefault(index, {})
            grad_w = layer.grad_weights
            if self.weight_decay:
                grad_w = grad_w + self.weight_decay * layer.weights
            self._update(state, "weights", layer.weights, grad_w)
            if layer.use_bias and layer.grad_bias is not None:
                self._update(state, "bias", layer.bias, layer.grad_bias)


_OPTIMIZERS: Dict[str, Type[Optimizer]] = {
    SGD.name: SGD,
    Momentum.name: Momentum,
    Adam.name: Adam,
}


def get_optimizer(name, **kwargs) -> Optimizer:
    """Look up an optimizer by name, or pass through an Optimizer instance."""
    if isinstance(name, Optimizer):
        return name
    if isinstance(name, type) and issubclass(name, Optimizer):
        return name(**kwargs)
    key = str(name).lower()
    if key not in _OPTIMIZERS:
        raise KeyError(f"unknown optimizer {name!r}; available: {sorted(_OPTIMIZERS)}")
    return _OPTIMIZERS[key](**kwargs)
