"""Loss functions used by the paper's experiments.

Two losses appear in the paper: mean squared error (with a linear output) and
categorical cross-entropy (with a softmax output).  Both return per-batch mean
losses and gradients with respect to the network *output* (post-activation);
the fused softmax/cross-entropy gradient with respect to the pre-activation is
also provided for numerically stable training.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

_EPS = 1e-12


class Loss(ABC):
    """Base class for losses over batches of shape ``(B, M)``."""

    name: str = "loss"

    @abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to ``predictions``."""

    def per_sample(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Loss value for each sample individually (shape ``(B,)``)."""
        predictions = np.atleast_2d(np.asarray(predictions, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        return np.array(
            [self.value(predictions[i : i + 1], targets[i : i + 1]) for i in range(len(predictions))]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MeanSquaredError(Loss):
    """Mean squared error, averaged over batch and output dimensions."""

    name = "mse"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions shape {predictions.shape} != targets shape {targets.shape}"
            )
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions shape {predictions.shape} != targets shape {targets.shape}"
            )
        return 2.0 * (predictions - targets) / predictions.size


class CategoricalCrossEntropy(Loss):
    """Categorical cross-entropy over one-hot (or soft) targets.

    ``gradient`` differentiates with respect to the post-softmax probabilities.
    ``fused_softmax_gradient`` gives the standard ``(p - t) / B`` gradient with
    respect to the logits and should be preferred during training.
    """

    name = "categorical_crossentropy"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions shape {predictions.shape} != targets shape {targets.shape}"
            )
        clipped = np.clip(predictions, _EPS, 1.0)
        batch = predictions.shape[0] if predictions.ndim > 1 else 1
        return float(-np.sum(targets * np.log(clipped)) / batch)

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions shape {predictions.shape} != targets shape {targets.shape}"
            )
        clipped = np.clip(predictions, _EPS, 1.0)
        batch = predictions.shape[0] if predictions.ndim > 1 else 1
        return -(targets / clipped) / batch

    @staticmethod
    def fused_softmax_gradient(
        probabilities: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Gradient w.r.t. the logits when softmax and CE are fused."""
        probabilities = np.asarray(probabilities, dtype=float)
        targets = np.asarray(targets, dtype=float)
        batch = probabilities.shape[0] if probabilities.ndim > 1 else 1
        return (probabilities - targets) / batch


_LOSSES: Dict[str, Type[Loss]] = {
    MeanSquaredError.name: MeanSquaredError,
    CategoricalCrossEntropy.name: CategoricalCrossEntropy,
    "crossentropy": CategoricalCrossEntropy,
    "ce": CategoricalCrossEntropy,
}


def get_loss(name) -> Loss:
    """Look up a loss by name, or pass through a Loss instance."""
    if isinstance(name, Loss):
        return name
    if isinstance(name, type) and issubclass(name, Loss):
        return name()
    key = str(name).lower()
    if key not in _LOSSES:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(set(_LOSSES))}")
    return _LOSSES[key]()
