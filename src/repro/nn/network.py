"""Network containers: the paper's single-layer model and a general Sequential.

The experiments use :class:`SingleLayerNetwork`, a thin convenience wrapper
around one :class:`~repro.nn.layers.Dense` layer with either a linear output
(MSE loss) or a softmax output (categorical cross-entropy loss), exactly the
two configurations evaluated in the paper.  :class:`Sequential` supports
multi-layer stacks for the paper's stated future-work direction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.activations import Softmax
from repro.nn.layers import Dense
from repro.nn.losses import CategoricalCrossEntropy, Loss, MeanSquaredError
from repro.utils.rng import RandomState
from repro.utils.serialization import load_npz, save_npz


class Sequential:
    """A simple stack of :class:`Dense` layers trained by backpropagation."""

    def __init__(self, layers: Optional[Iterable[Dense]] = None):
        self.layers: List[Dense] = list(layers) if layers is not None else []

    def add(self, layer: Dense) -> "Sequential":
        """Append a layer and return self (chainable)."""
        if self.layers and layer.n_inputs != self.layers[-1].n_outputs:
            raise ValueError(
                f"layer expects {layer.n_inputs} inputs but previous layer "
                f"produces {self.layers[-1].n_outputs} outputs"
            )
        self.layers.append(layer)
        return self

    @property
    def n_inputs(self) -> int:
        """Input dimensionality of the first layer."""
        self._require_layers()
        return self.layers[0].n_inputs

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the last layer."""
        self._require_layers()
        return self.layers[-1].n_outputs

    def _require_layers(self) -> None:
        if not self.layers:
            raise RuntimeError("the network has no layers")

    # -------------------------------------------------------------- forward

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Forward pass through all layers."""
        self._require_layers()
        output = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` in inference mode."""
        return self.forward(inputs, training=False)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Return argmax class labels for a batch of inputs."""
        return np.argmax(self.predict(inputs), axis=1)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------- backward

    def backward(self, grad_output: np.ndarray, *, skip_last_activation: bool = False) -> np.ndarray:
        """Back-propagate a loss gradient through all layers."""
        self._require_layers()
        grad = grad_output
        for index, layer in enumerate(reversed(self.layers)):
            is_last = index == 0
            grad = layer.backward(
                grad, skip_activation=skip_last_activation and is_last
            )
        return grad

    def zero_gradients(self) -> None:
        """Clear gradients on all layers."""
        for layer in self.layers:
            layer.zero_gradients()

    # ----------------------------------------------------------- parameters

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        """All trainable parameters keyed by ``layer{i}/{name}``."""
        params: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.parameters.items():
                params[f"layer{index}/{name}"] = value
        return params

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        """All parameter gradients keyed consistently with :attr:`parameters`."""
        grads: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.gradients.items():
                grads[f"layer{index}/{name}"] = value
        return grads

    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters.values()))

    # -------------------------------------------------------------- save/load

    def save(self, path) -> None:
        """Save all parameters to an ``.npz`` archive."""
        save_npz(self.parameters, path)

    def load(self, path) -> None:
        """Load parameters saved by :meth:`save` into this architecture."""
        arrays = load_npz(path)
        for index, layer in enumerate(self.layers):
            weights = arrays.get(f"layer{index}/weights")
            if weights is None:
                raise KeyError(f"archive is missing weights for layer {index}")
            bias = arrays.get(f"layer{index}/bias")
            layer.set_weights(weights, bias)


class SingleLayerNetwork(Sequential):
    """The paper's model: one dense layer with linear or softmax output.

    Parameters
    ----------
    n_inputs:
        Number of input features (784 for MNIST-like, 3072 for CIFAR-like).
    n_outputs:
        Number of classes (10 in the paper).
    output:
        ``"linear"`` (paired with MSE loss) or ``"softmax"`` (paired with
        categorical cross-entropy), matching the two configurations in the
        paper's Table I and Figures 3-5.
    use_bias:
        Optional bias term; defaults to False to match the crossbar mapping.
    random_state:
        Seed or generator for weight initialization.
    """

    VALID_OUTPUTS = ("linear", "softmax")

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        *,
        output: str = "linear",
        use_bias: bool = False,
        random_state: RandomState = None,
    ):
        output = str(output).lower()
        if output not in self.VALID_OUTPUTS:
            raise ValueError(
                f"output must be one of {self.VALID_OUTPUTS}, got {output!r}"
            )
        layer = Dense(
            n_inputs,
            n_outputs,
            activation=output,
            use_bias=use_bias,
            random_state=random_state,
        )
        super().__init__([layer])
        self.output_type = output

    @property
    def layer(self) -> Dense:
        """The single dense layer."""
        return self.layers[0]

    @property
    def weights(self) -> np.ndarray:
        """The weight matrix ``W`` of shape ``(n_outputs, n_inputs)``."""
        return self.layer.weights

    @weights.setter
    def weights(self, value: np.ndarray) -> None:
        self.layer.set_weights(value)

    def default_loss(self) -> Loss:
        """The loss the paper pairs with this output type."""
        if self.output_type == "softmax":
            return CategoricalCrossEntropy()
        return MeanSquaredError()

    def uses_softmax(self) -> bool:
        """True when the output activation is softmax."""
        return isinstance(self.layer.activation, Softmax)

    def clone_architecture(self, random_state: RandomState = None) -> "SingleLayerNetwork":
        """Create a new, freshly initialized network with the same shape."""
        return SingleLayerNetwork(
            self.layer.n_inputs,
            self.layer.n_outputs,
            output=self.output_type,
            use_bias=self.layer.use_bias,
            random_state=random_state,
        )
