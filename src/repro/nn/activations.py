"""Activation functions with forward and backward passes.

Each activation exposes ``forward`` and ``backward``.  ``backward`` receives
the upstream gradient and the cached forward output and returns the gradient
with respect to the pre-activation input.  Softmax is handled specially: its
full Jacobian is used unless it is fused with the categorical cross-entropy
loss (the usual, numerically stable route implemented in
:mod:`repro.nn.losses`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np


class Activation(ABC):
    """Base class for elementwise (or rowwise) activation functions."""

    #: registry name, filled in by subclasses
    name: str = "activation"

    @abstractmethod
    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        """Apply the activation to a batch of pre-activations ``(B, M)``."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` through the activation.

        Parameters
        ----------
        grad_output:
            Gradient of the loss with respect to the activation output.
        output:
            Cached activation output from the forward pass.
        """

    def derivative(self, pre_activation: np.ndarray) -> np.ndarray:
        """Elementwise derivative f'(s); used by the sensitivity analysis."""
        output = self.forward(pre_activation)
        return self.backward(np.ones_like(output), output)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear (no-op) activation — the paper's "linear output" configuration."""

    name = "linear"

    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        return np.asarray(pre_activation, dtype=float)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=float)


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        return np.maximum(pre_activation, 0.0)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * (output > 0.0)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        s = np.asarray(pre_activation, dtype=float)
        out = np.empty_like(s)
        positive = s >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-s[positive]))
        exp_s = np.exp(s[~positive])
        out[~positive] = exp_s / (1.0 + exp_s)
        return out

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * output * (1.0 - output)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        return np.tanh(pre_activation)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - output**2)


class Softmax(Activation):
    """Row-wise softmax.

    The backward pass applies the full softmax Jacobian so the activation is
    correct even when it is *not* fused with cross-entropy (e.g. when the
    attacker differentiates an MSE loss through a softmax output).
    """

    name = "softmax"

    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        s = np.asarray(pre_activation, dtype=float)
        shifted = s - s.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        # For each row: J = diag(y) - y y^T, so J^T g = y * (g - <g, y>).
        dot = np.sum(grad_output * output, axis=-1, keepdims=True)
        return output * (grad_output - dot)

    def derivative(self, pre_activation: np.ndarray) -> np.ndarray:
        """Diagonal of the softmax Jacobian: y_i (1 - y_i).

        The paper's sensitivity bound (Eq. 8) only uses f'(s_i) as an
        elementwise slope, for which the Jacobian diagonal is the relevant
        quantity.
        """
        output = self.forward(pre_activation)
        return output * (1.0 - output)


_ACTIVATIONS: Dict[str, Type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, Sigmoid, Tanh, Softmax)
}
_ACTIVATIONS["identity"] = Identity
_ACTIVATIONS["none"] = Identity


def get_activation(name) -> Activation:
    """Look up an activation by name, or pass through an Activation instance."""
    if isinstance(name, Activation):
        return name
    if isinstance(name, type) and issubclass(name, Activation):
        return name()
    key = str(name).lower()
    if key not in _ACTIVATIONS:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(set(_ACTIVATIONS))}"
        )
    return _ACTIVATIONS[key]()
