"""Mini-batch training loop with history tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import CategoricalCrossEntropy, Loss, get_loss
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential, SingleLayerNetwork
from repro.nn.optimizers import SGD, Optimizer, get_optimizer
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def record(
        self,
        train_loss: float,
        train_accuracy: float,
        val_loss: Optional[float] = None,
        val_accuracy: Optional[float] = None,
    ) -> None:
        """Append one epoch's metrics."""
        self.train_loss.append(float(train_loss))
        self.train_accuracy.append(float(train_accuracy))
        if val_loss is not None:
            self.val_loss.append(float(val_loss))
        if val_accuracy is not None:
            self.val_accuracy.append(float(val_accuracy))

    @property
    def n_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def best_epoch(self, key: str = "val_loss") -> int:
        """Index of the best epoch (lowest loss / highest accuracy)."""
        curve = getattr(self, key)
        if not curve:
            raise ValueError(f"history has no entries for {key!r}")
        values = np.asarray(curve)
        if key.endswith("accuracy"):
            return int(values.argmax())
        return int(values.argmin())

    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view of the curves."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Trainer:
    """Trains a network with mini-batch gradient descent.

    Parameters
    ----------
    network:
        The network to train (modified in place).
    loss:
        Loss name or instance.  When the network's last layer uses softmax and
        the loss is categorical cross-entropy, the numerically stable fused
        gradient path is used automatically.
    optimizer:
        Optimizer name or instance (default plain SGD).
    batch_size:
        Mini-batch size.
    shuffle:
        Whether to reshuffle the training set each epoch.
    random_state:
        Seed or generator controlling shuffling.
    """

    def __init__(
        self,
        network: Sequential,
        *,
        loss="mse",
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 64,
        shuffle: bool = True,
        random_state: RandomState = None,
    ):
        self.network = network
        self.loss: Loss = get_loss(loss)
        self.optimizer: Optimizer = (
            get_optimizer(optimizer) if optimizer is not None else SGD(learning_rate=0.05)
        )
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self._rng = as_rng(random_state)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ api

    def _use_fused_softmax(self) -> bool:
        last_layer = self.network.layers[-1]
        return (
            isinstance(self.loss, CategoricalCrossEntropy)
            and last_layer.activation.name == "softmax"
        )

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One optimization step on a single mini-batch; returns batch loss."""
        outputs = self.network.forward(inputs, training=True)
        loss_value = self.loss.value(outputs, targets)
        if self._use_fused_softmax():
            grad = CategoricalCrossEntropy.fused_softmax_gradient(outputs, targets)
            self.network.backward(grad, skip_last_activation=True)
        else:
            grad = self.loss.gradient(outputs, targets)
            self.network.backward(grad)
        self.optimizer.step(self.network)
        self.network.zero_gradients()
        return loss_value

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> Tuple[float, float]:
        """Return (loss, accuracy) on a dataset without updating parameters."""
        outputs = self.network.predict(inputs)
        return self.loss.value(outputs, targets), accuracy(outputs, targets)

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        *,
        epochs: int = 10,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        early_stopping_patience: Optional[int] = None,
        min_delta: float = 0.0,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs.

        Early stopping monitors validation loss when ``validation_data`` is
        given, otherwise training loss.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs and targets disagree on sample count: {len(inputs)} vs {len(targets)}"
            )
        epochs = check_positive_int(epochs, "epochs")

        best_monitor = np.inf
        epochs_without_improvement = 0

        for epoch in range(epochs):
            order = (
                self._rng.permutation(len(inputs)) if self.shuffle else np.arange(len(inputs))
            )
            epoch_losses = []
            for start in range(0, len(inputs), self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                epoch_losses.append(
                    self.train_step(inputs[batch_idx], targets[batch_idx])
                )

            train_loss, train_acc = self.evaluate(inputs, targets)
            val_loss = val_acc = None
            if validation_data is not None:
                val_loss, val_acc = self.evaluate(*validation_data)
            self.history.record(train_loss, train_acc, val_loss, val_acc)

            if verbose:  # pragma: no cover - console output
                message = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={train_loss:.4f} acc={train_acc:.4f}"
                )
                if val_loss is not None:
                    message += f" val_loss={val_loss:.4f} val_acc={val_acc:.4f}"
                print(message)

            if early_stopping_patience is not None:
                monitor = val_loss if val_loss is not None else train_loss
                if monitor < best_monitor - min_delta:
                    best_monitor = monitor
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= early_stopping_patience:
                        break

        return self.history


def train_single_layer(
    dataset,
    *,
    output: str = "linear",
    epochs: int = 30,
    learning_rate: float = 0.005,
    batch_size: int = 64,
    optimizer: str = "adam",
    random_state: RandomState = None,
) -> Tuple[SingleLayerNetwork, Trainer]:
    """Convenience helper: build and train the paper's single-layer model.

    Parameters
    ----------
    dataset:
        A :class:`repro.datasets.base.Dataset` with flattened inputs and
        one-hot targets.
    output:
        ``"linear"`` (MSE loss) or ``"softmax"`` (cross-entropy loss).
    optimizer:
        Optimizer name; Adam (default) converges reliably for both the MSE
        and cross-entropy configurations across the very different input
        dimensionalities of the two datasets.
    """
    rng = as_rng(random_state)
    network = SingleLayerNetwork(
        dataset.n_features,
        dataset.n_classes,
        output=output,
        random_state=rng,
    )
    loss = network.default_loss()
    trainer = Trainer(
        network,
        loss=loss,
        optimizer=get_optimizer(optimizer, learning_rate=learning_rate),
        batch_size=batch_size,
        random_state=rng,
    )
    trainer.fit(
        dataset.train_inputs,
        dataset.train_targets,
        epochs=epochs,
        validation_data=(dataset.test_inputs, dataset.test_targets),
    )
    return network, trainer
