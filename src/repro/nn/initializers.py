"""Weight initializers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple, Type

import numpy as np

from repro.utils.rng import RandomState, as_rng


class Initializer(ABC):
    """Base class for weight initializers."""

    name: str = "initializer"

    @abstractmethod
    def __call__(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Return an array of ``shape`` sampled from the initializer."""

    def initialize(
        self, shape: Tuple[int, ...], random_state: RandomState = None
    ) -> np.ndarray:
        """Convenience wrapper that accepts any :data:`RandomState`."""
        return self(shape, as_rng(random_state))


class Zeros(Initializer):
    """All-zero initialization (used for biases)."""

    name = "zeros"

    def __call__(self, shape, rng):
        return np.zeros(shape, dtype=float)


class Constant(Initializer):
    """Constant-valued initialization."""

    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def __call__(self, shape, rng):
        return np.full(shape, self.value, dtype=float)


class NormalInitializer(Initializer):
    """Gaussian initialization with configurable standard deviation."""

    name = "normal"

    def __init__(self, stddev: float = 0.01, mean: float = 0.0):
        if stddev < 0:
            raise ValueError(f"stddev must be >= 0, got {stddev}")
        self.stddev = float(stddev)
        self.mean = float(mean)

    def __call__(self, shape, rng):
        return rng.normal(self.mean, self.stddev, size=shape)


class UniformInitializer(Initializer):
    """Uniform initialization in ``[low, high]``."""

    name = "uniform"

    def __init__(self, low: float = -0.05, high: float = 0.05):
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, shape, rng):
        return rng.uniform(self.low, self.high, size=shape)


class XavierUniform(Initializer):
    """Glorot/Xavier uniform initialization for (fan_out, fan_in) matrices."""

    name = "xavier_uniform"

    def __call__(self, shape, rng):
        fan_out, fan_in = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class XavierNormal(Initializer):
    """Glorot/Xavier normal initialization."""

    name = "xavier_normal"

    def __call__(self, shape, rng):
        fan_out, fan_in = _fans(shape)
        stddev = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, stddev, size=shape)


class HeNormal(Initializer):
    """He initialization suited to ReLU layers."""

    name = "he_normal"

    def __call__(self, shape, rng):
        _, fan_in = _fans(shape)
        stddev = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, stddev, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_out, fan_in) for a weight shape.

    Weight matrices in this library are stored as ``(outputs, inputs)`` to
    mirror the paper's ``W`` in ``y = f(W u)``.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive


_INITIALIZERS: Dict[str, Type[Initializer]] = {
    cls.name: cls
    for cls in (Zeros, NormalInitializer, UniformInitializer, XavierUniform, XavierNormal, HeNormal)
}


def get_initializer(name) -> Initializer:
    """Look up an initializer by name, or pass through an instance."""
    if isinstance(name, Initializer):
        return name
    if isinstance(name, type) and issubclass(name, Initializer):
        return name()
    key = str(name).lower()
    if key not in _INITIALIZERS:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}"
        )
    return _INITIALIZERS[key]()
