"""Input gradients, sensitivity maps and weight-column norms.

These functions implement the quantities at the heart of the paper's analysis:

* ``input_gradients`` — the gradient of the loss with respect to the input,
  i.e. the sensitivity from Eq. 7,
  ``dL/du_j = sum_i dL/dy_i * f'(s_i) * w_ij``.
* ``mean_sensitivity`` — the magnitude of that gradient averaged over a set of
  samples (the left panels of Figure 3).
* ``weight_column_norms`` — the column 1-norms of the weight matrix, which is
  exactly what the crossbar's power side channel leaks (the right panels of
  Figure 3 and Eq. 5-6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.losses import CategoricalCrossEntropy, Loss, get_loss
from repro.nn.network import Sequential


def input_gradients(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    loss: Optional[Loss] = None,
) -> np.ndarray:
    """Gradient of the loss with respect to each input, per sample.

    Parameters
    ----------
    network:
        Any :class:`~repro.nn.network.Sequential` network.
    inputs:
        Batch of inputs, shape ``(B, N)``.
    targets:
        Batch of targets (one-hot), shape ``(B, M)``.
    loss:
        Loss instance or name; defaults to the network's natural loss when the
        network is a :class:`SingleLayerNetwork`, otherwise MSE.

    Returns
    -------
    np.ndarray
        Array of shape ``(B, N)`` whose row b is ``dL(u_b)/du_b`` where the
        loss is evaluated *per sample* (not averaged over the batch), matching
        the paper's per-input sensitivity definition.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    if len(inputs) != len(targets):
        raise ValueError(
            f"inputs and targets disagree on sample count: {len(inputs)} vs {len(targets)}"
        )

    if loss is None:
        default = getattr(network, "default_loss", None)
        loss = default() if callable(default) else get_loss("mse")
    else:
        loss = get_loss(loss)

    outputs = network.forward(inputs, training=True)

    use_fused = (
        isinstance(loss, CategoricalCrossEntropy)
        and network.layers[-1].activation.name == "softmax"
    )
    if use_fused:
        # Per-sample loss (batch factor 1): gradient w.r.t. logits is p - t.
        grad_output = outputs - targets
        grad_inputs = network.backward(grad_output, skip_last_activation=True)
    else:
        # loss.gradient averages over the batch; multiplying by the batch size
        # restores the per-sample normalisation used in the paper.
        grad_output = loss.gradient(outputs, targets) * len(inputs)
        grad_inputs = network.backward(grad_output)
    network.zero_gradients()
    return grad_inputs


def sensitivity_map(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    loss: Optional[Loss] = None,
) -> np.ndarray:
    """Per-sample sensitivity magnitudes ``|dL/du_j|`` of shape ``(B, N)``."""
    return np.abs(input_gradients(network, inputs, targets, loss=loss))


def mean_sensitivity(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    loss: Optional[Loss] = None,
) -> np.ndarray:
    """Mean of ``|dL/du_j|`` over the sample set — the maps in Figure 3.

    Returns an array of shape ``(N,)``.
    """
    return sensitivity_map(network, inputs, targets, loss=loss).mean(axis=0)


def weight_column_norms(weights: np.ndarray, order: int = 1) -> np.ndarray:
    """Column p-norms of a weight matrix ``(M, N)`` — shape ``(N,)``.

    With ``order=1`` this is the quantity the power side channel reveals:
    ``G_j ∝ sum_i |w_ij|`` (Eq. 5-6 of the paper).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be a 2-D matrix, got shape {weights.shape}")
    if order == 1:
        return np.abs(weights).sum(axis=0)
    if order == 2:
        return np.sqrt((weights**2).sum(axis=0))
    if order == np.inf:
        return np.abs(weights).max(axis=0)
    raise ValueError(f"unsupported norm order {order!r}; use 1, 2 or np.inf")
