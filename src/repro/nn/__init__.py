"""From-scratch numpy neural-network substrate.

This package implements everything the paper's experiments need from a deep
learning framework: dense layers, activations, losses, optimizers, a trainer,
metrics, and analytic input-gradient (sensitivity) computation.  Only
single-layer and small sequential networks are exercised by the paper, but the
implementation is general.
"""

from repro.nn.activations import (
    Activation,
    Identity,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    CategoricalCrossEntropy,
    get_loss,
)
from repro.nn.initializers import (
    Initializer,
    Zeros,
    Constant,
    NormalInitializer,
    UniformInitializer,
    XavierUniform,
    XavierNormal,
    HeNormal,
    get_initializer,
)
from repro.nn.layers import Dense
from repro.nn.network import SingleLayerNetwork, Sequential
from repro.nn.optimizers import SGD, Momentum, Adam, Optimizer, get_optimizer
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.metrics import accuracy, error_rate, confusion_matrix, top_k_accuracy
from repro.nn.gradients import (
    input_gradients,
    mean_sensitivity,
    sensitivity_map,
    weight_column_norms,
)

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "get_activation",
    "Loss",
    "MeanSquaredError",
    "CategoricalCrossEntropy",
    "get_loss",
    "Initializer",
    "Zeros",
    "Constant",
    "NormalInitializer",
    "UniformInitializer",
    "XavierUniform",
    "XavierNormal",
    "HeNormal",
    "get_initializer",
    "Dense",
    "SingleLayerNetwork",
    "Sequential",
    "SGD",
    "Momentum",
    "Adam",
    "Optimizer",
    "get_optimizer",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "top_k_accuracy",
    "input_gradients",
    "mean_sensitivity",
    "sensitivity_map",
    "weight_column_norms",
]
