"""Classification metrics."""

from __future__ import annotations

import numpy as np


def _as_labels(values: np.ndarray) -> np.ndarray:
    """Convert one-hot / probability matrices to label vectors; pass labels through."""
    values = np.asarray(values)
    if values.ndim == 2:
        return np.argmax(values, axis=1)
    return values.astype(int)


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of samples whose predicted label matches the target label.

    Both arguments may be label vectors, one-hot matrices, or score matrices.
    """
    pred_labels = _as_labels(predictions)
    true_labels = _as_labels(targets)
    if pred_labels.shape != true_labels.shape:
        raise ValueError(
            "predictions and targets disagree on sample count: "
            f"{pred_labels.shape} vs {true_labels.shape}"
        )
    if pred_labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(pred_labels == true_labels))


def error_rate(predictions: np.ndarray, targets: np.ndarray) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy(predictions, targets)


def top_k_accuracy(scores: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is among the top-k scores."""
    scores = np.atleast_2d(np.asarray(scores, dtype=float))
    true_labels = _as_labels(targets)
    if k < 1 or k > scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(scores, axis=1)[:, -k:]
    hits = [true_labels[i] in top_k[i] for i in range(len(true_labels))]
    return float(np.mean(hits))


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted as j."""
    pred_labels = _as_labels(predictions)
    true_labels = _as_labels(targets)
    if n_classes is None:
        n_classes = int(max(pred_labels.max(), true_labels.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for true, pred in zip(true_labels, pred_labels):
        matrix[true, pred] += 1
    return matrix
