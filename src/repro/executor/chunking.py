"""Deterministic chunking and idempotency keys for job grids.

The work-queue coordinator does not lease individual jobs — it leases
*chunks* (contiguous slices of the ordered job grid).  Everything downstream
hangs off two deterministic identifiers computed here:

* a **chunk key** — sha256 over the chunk's position and the identity of
  every job in it.  Workers echo the key back with their results, the
  coordinator dedupes completed keys (so a retried lease is never
  double-counted), and the journal records results under it.
* a **grid fingerprint** — sha256 over the full grid plus the chunk
  geometry.  A resume journal must carry the same fingerprint, otherwise
  the journal belongs to a different run and resuming raises
  :class:`~repro.executor.errors.JournalMismatchError`.

Both are derived purely from job *identity* (label, seed, scale), never from
object ids or timestamps, so a re-built grid on another host or another day
produces the same keys.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

#: Default jobs-per-lease.  Small enough that a worker death loses little
#: work; large enough to amortise the frame round-trip per lease.
DEFAULT_CHUNK_SIZE = 4


def job_signature(job) -> str:
    """Stable identity string for one job (label + seed + scale)."""
    scale = getattr(job, "scale", None)
    scale_name = getattr(scale, "name", "")
    return f"{job.label}|seed={job.seed}|scale={scale_name}"


def _digest(parts: Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice ``jobs[start:stop]`` of the grid.

    Attributes
    ----------
    index:
        Position in the chunk sequence (0-based; also the result slot).
    start / stop:
        Half-open slice bounds into the ordered job list.
    key:
        The chunk's idempotency key (see module docstring).
    """

    index: int
    start: int
    stop: int
    key: str

    @property
    def n_jobs(self) -> int:
        return self.stop - self.start


def chunk_jobs(jobs: Sequence, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[Chunk]:
    """Split the ordered grid into keyed contiguous chunks."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = []
    for index, start in enumerate(range(0, len(jobs), chunk_size)):
        stop = min(start + chunk_size, len(jobs))
        key = _digest(
            [f"chunk={index}", f"span={start}:{stop}"]
            + [job_signature(job) for job in jobs[start:stop]]
        )
        chunks.append(Chunk(index=index, start=start, stop=stop, key=key[:24]))
    return chunks


def grid_fingerprint(jobs: Sequence, chunk_size: int) -> str:
    """Fingerprint of the full grid + chunk geometry (journal identity)."""
    return _digest(
        [f"total={len(jobs)}", f"chunk_size={chunk_size}"]
        + [job_signature(job) for job in jobs]
    )
