"""Command-line entry points of the executor subsystem.

``python -m repro.executor worker --connect HOST:PORT`` attaches a worker
process to a running :class:`~repro.executor.queue.QueueExecutor`
coordinator — this is both how the coordinator spawns its local workers and
how an operator adds remote machines to a run.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple


def load_auth_key(path) -> str:
    """Read a shared auth key from a file (stripped; must be non-empty)."""
    with open(path, "r", encoding="utf-8") as handle:
        key = handle.read().strip()
    if not key:
        raise argparse.ArgumentTypeError(f"auth key file {path!r} is empty")
    return key


def parse_address(value: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (host may be empty, meaning all interfaces)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return (host or "0.0.0.0", int(port))
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid port in {value!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.executor",
        description="Work-queue executor processes (see repro.executor docs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser(
        "worker", help="attach a worker to a running coordinator"
    )
    worker.add_argument(
        "--connect",
        type=parse_address,
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to lease chunks from",
    )
    worker.add_argument(
        "--id", default=None, help="worker id shown in coordinator stats/logs"
    )
    worker.add_argument(
        "--auth-file",
        default=None,
        metavar="PATH",
        help="file holding the coordinator's shared auth key (default: the "
        "REPRO_QUEUE_AUTH environment variable)",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="heartbeat interval while executing a lease (default 0.5)",
    )
    worker.add_argument(
        "--max-connect-attempts",
        type=int,
        default=8,
        help="reconnect attempts (jittered exponential backoff) before giving up",
    )
    worker.add_argument(
        "--fail-after-jobs",
        type=int,
        default=None,
        metavar="N",
        help="TESTING ONLY: die hard (os._exit) after N jobs total, "
        "mid-chunk when N is unaligned — exercises lease re-queue",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "worker":
        from repro.executor.worker import run_worker

        host, port = args.connect
        return run_worker(
            host,
            port,
            worker_id=args.id,
            auth_key=load_auth_key(args.auth_file) if args.auth_file else None,
            heartbeat_s=args.heartbeat,
            max_connect_attempts=args.max_connect_attempts,
            fail_after_jobs=args.fail_after_jobs,
        )
    raise AssertionError(f"unhandled command {args.command!r}")
