"""Error taxonomy of the executor subsystem.

Mirrors the :mod:`repro.netservice.errors` split the worker protocol is
modelled on: *retryable* transport failures (connection loss, malformed
frames from a dying peer) versus *terminal* conditions (cancellation, a
journal that does not belong to the submitted job grid).
"""

from __future__ import annotations


class ExecutorError(Exception):
    """Base class for every executor-layer failure."""


class ExecutionCancelled(ExecutorError):
    """The submitted grid was cancelled before completion."""


class QueueProtocolError(ExecutorError):
    """A malformed or oversized frame on the work-queue wire."""


class QueueAuthError(ExecutorError):
    """The shared-key challenge handshake failed (terminal, not retryable).

    Raised by the coordinator when a connecting peer cannot prove knowledge
    of the run's auth key, and by a worker when the coordinator cannot —
    either way the peer is misconfigured or untrusted, and retrying with the
    same key cannot succeed.
    """


class WorkerConnectionLost(ExecutorError):
    """The coordinator/worker connection died mid-conversation (retryable)."""


class JournalMismatchError(ExecutorError):
    """A resume journal does not describe the submitted job grid.

    Raised instead of silently re-running (or worse, splicing foreign chunk
    results into the grid): the journal header records a fingerprint of the
    full job list and the chunk geometry, and resuming requires an exact
    match.
    """


class JobFailedError(ExecutorError):
    """A job raised on a worker; the failure is terminal, not retryable.

    Re-leasing a deterministic seeded job cannot help — the same inputs
    produce the same exception — so the coordinator surfaces the remote
    traceback to the caller instead of burning lease retries on it.
    """
