"""The first-class :class:`Executor` API for experiment job grids.

Every experiment expands into an ordered list of frozen, seeded
:class:`~repro.experiments.base.Job` values; an :class:`Executor` is *how*
that list turns into the ordered list of
:class:`~repro.utils.results.RunResult`.  The correctness contract shared by
every implementation:

* **Order** — results come back in job order, regardless of completion order.
* **Bit-identity** — because every job is seeded up front and executed by the
  same picklable ``run_job`` callable, any executor produces results
  bit-identical to :class:`SerialExecutor`.
* **Hooks** — ``on_progress`` receives :class:`ExecutorEvent` notifications
  and ``cancel`` (a :class:`CancelToken`) aborts between units of work with
  :class:`~repro.executor.errors.ExecutionCancelled`.

Three implementations ship:

* :class:`SerialExecutor` — in-process loop (the debugging reference).
* :class:`PoolExecutor` — wraps
  :class:`~repro.experiments.runner.ParallelRunner` (one host's
  process/thread pool), bit-identical to the historical ``runner=`` path.
* :class:`~repro.executor.queue.QueueExecutor` — a TCP work-queue
  coordinator leasing job chunks to local or remote worker processes, with
  retries, heartbeat-based lease recovery and a resumable JSONL journal.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.executor.errors import ExecutionCancelled

#: Signature of the ``on_progress`` hook.
ProgressHook = Callable[["ExecutorEvent"], None]


@dataclass(frozen=True)
class ExecutorEvent:
    """One progress notification from a running executor.

    Attributes
    ----------
    kind:
        ``"start"``, ``"job"``, ``"chunk"``, ``"requeue"``, ``"resume"`` or
        ``"done"``.
    completed / total:
        Units of work finished so far / in the whole grid.  ``job`` events
        count jobs; ``chunk``/``requeue``/``resume`` events count chunks.
    detail:
        Human-readable context (job label, chunk key, worker id, ...).
    """

    kind: str
    completed: int
    total: int
    detail: str = ""


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    Executors poll :meth:`is_set` between units of work and raise
    :class:`~repro.executor.errors.ExecutionCancelled`; they never interrupt
    a job mid-flight (jobs are short and side-effect free).
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    def is_set(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def raise_if_cancelled(self, context: str = "") -> None:
        """Raise :class:`ExecutionCancelled` when the flag is set."""
        if self.is_set():
            suffix = f" ({context})" if context else ""
            raise ExecutionCancelled(f"execution cancelled{suffix}")


def emit(hook: Optional[ProgressHook], event: ExecutorEvent) -> None:
    """Deliver one event to an optional progress hook (None = no-op)."""
    if hook is not None:
        hook(event)


class Executor(ABC):
    """Protocol every execution backend implements.

    ``submit_jobs`` is the single entry point: it receives the full ordered
    job grid and returns the ordered results.  ``run_job`` is the
    experiment's picklable per-job callable; ``None`` resolves each job's
    experiment by name through the registry (sufficient for every built-in
    experiment, and for any registered experiment on the local process).
    """

    #: Short identifier used by CLIs and result metadata.
    name: str = ""

    @abstractmethod
    def submit_jobs(
        self,
        jobs: Sequence,
        *,
        run_job: Optional[Callable] = None,
        on_progress: Optional[ProgressHook] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List:
        """Execute every job and return the results in job order."""


def _job_runner(run_job: Optional[Callable]) -> Callable:
    """The per-job callable an executor actually invokes.

    Wraps the experiment's ``run_job`` with the metadata annotation exactly
    like the historical ``execute_jobs`` serial path, or falls back to the
    registry-resolving trampoline.
    """
    from repro.experiments.base import _execute_job, _run_annotated

    if run_job is None:
        return _execute_job
    return lambda job: _run_annotated(run_job, job)


class SerialExecutor(Executor):
    """In-process, single-threaded execution — the bit-identity reference."""

    name = "serial"

    def submit_jobs(self, jobs, *, run_job=None, on_progress=None, cancel=None):
        call = _job_runner(run_job)
        total = len(jobs)
        emit(on_progress, ExecutorEvent("start", 0, total))
        results = []
        for index, job in enumerate(jobs):
            if cancel is not None:
                cancel.raise_if_cancelled(f"after {index}/{total} jobs")
            results.append(call(job))
            emit(
                on_progress,
                ExecutorEvent("job", index + 1, total, detail=getattr(job, "label", "")),
            )
        emit(on_progress, ExecutorEvent("done", total, total))
        return results


class PoolExecutor(Executor):
    """One host's worker pool: a thin adapter over :class:`ParallelRunner`.

    Submits the grid exactly like the historical ``execute_jobs(runner=...)``
    path (same chunked ``runner.map`` call, same payload tuples), so results
    are bit-identical to both the serial path and to pre-Executor releases.
    Per-job progress is not available from a pool ``map``; hooks receive
    ``start`` and ``done`` events only.
    """

    name = "pool"

    def __init__(self, runner=None, *, mode: str = "process", max_workers=None):
        from repro.experiments.runner import ParallelRunner

        if runner is None:
            runner = ParallelRunner(mode=mode, max_workers=max_workers)
        self.runner = runner

    def submit_jobs(self, jobs, *, run_job=None, on_progress=None, cancel=None):
        from repro.experiments.base import _execute_job, _run_annotated

        if cancel is not None:
            cancel.raise_if_cancelled("before pool submission")
        total = len(jobs)
        emit(on_progress, ExecutorEvent("start", 0, total))
        if run_job is None:
            results = self.runner.map(_execute_job, [(job,) for job in jobs])
        else:
            results = self.runner.map(_run_annotated, [(run_job, job) for job in jobs])
        emit(on_progress, ExecutorEvent("done", total, total))
        return results


#: Spellings accepted by :func:`resolve_executor` (CLI ``--executor`` values).
EXECUTOR_NAMES = ("serial", "process", "thread", "pool", "queue")


def resolve_executor(spec, **kwargs) -> Executor:
    """Build an :class:`Executor` from a name, instance, or ``None``.

    ``None``/``"serial"`` give the serial reference; ``"process"`` /
    ``"thread"`` / ``"pool"`` a :class:`PoolExecutor` of that mode; and
    ``"queue"`` a :class:`~repro.executor.queue.QueueExecutor`.  ``kwargs``
    are forwarded to the constructed executor; instances pass through
    (``kwargs`` then must be empty).
    """
    if isinstance(spec, Executor):
        if kwargs:
            raise ValueError(
                f"cannot apply options {sorted(kwargs)} to an existing "
                f"{type(spec).__name__} instance"
            )
        return spec
    key = "serial" if spec is None else str(spec).lower()
    if key == "serial":
        return SerialExecutor(**kwargs)
    if key in ("process", "thread"):
        return PoolExecutor(mode=key, **kwargs)
    if key == "pool":
        return PoolExecutor(**kwargs)
    if key == "queue":
        from repro.executor.queue import QueueExecutor

        return QueueExecutor(**kwargs)
    raise ValueError(f"unknown executor {spec!r}; available: {EXECUTOR_NAMES}")


def coerce_executor(executor, runner, *, owner: str, warn: bool = True):
    """Normalise the ``executor=`` / deprecated ``runner=`` pair of an API.

    Returns an :class:`Executor` or ``None`` (pure serial).  Passing both is
    an error; passing ``runner`` maps it onto a :class:`PoolExecutor` and —
    unless ``warn=False`` (used by already-deprecated wrappers) — emits a
    :class:`DeprecationWarning` naming the owning entry point.
    """
    if runner is None:
        return executor
    if executor is not None:
        raise ValueError(
            f"{owner}: pass either executor= or the deprecated runner=, not both"
        )
    if warn:
        import warnings

        warnings.warn(
            f"{owner}: runner= is deprecated; pass "
            "executor=repro.executor.PoolExecutor(runner) (or executor='process')",
            DeprecationWarning,
            stacklevel=3,
        )
    return PoolExecutor(runner=runner)
