"""Length-prefixed message frames for the work-queue wire.

Same preamble idiom as :mod:`repro.netservice.protocol` — magic, version,
big-endian payload length::

    +-------+---------+----------------+------------------------+
    | magic | version | body length    |   body (pickle)        |
    | b"RQ" | 1 byte  | uint32 big-end |   bl bytes             |
    +-------+---------+----------------+------------------------+

— but the body is a **pickle**, not JSON+arrays: leases carry frozen
:class:`~repro.experiments.base.Job` values (nested frozen dataclasses) and
results carry :class:`~repro.utils.results.RunResult` objects, both of which
pickle round-trips bit-exactly for free.

Trust model: pickle makes this a **trusted-worker** protocol.  Coordinator
and workers are the same codebase run by the same operator (the coordinator
spawns local workers itself; remote workers are started by the operator with
``python -m repro.executor worker --connect``).  Because unpickling a frame
from an attacker is arbitrary code execution, **no pickle frame is read
before the peer authenticates**: every connection starts with the
fixed-length HMAC-SHA256 challenge handshake below (the
:mod:`multiprocessing.connection` ``authkey`` scheme), mutual in both
directions — the coordinator proves the worker knows the run's shared key
before parsing anything, and the worker proves the *coordinator* does
before executing any lease it sends.  The handshake reads only
fixed-length byte strings, so an unauthenticated peer controls no lengths
and no deserialisation::

    coordinator -> worker   b"RQA" + version + nonce_s            (36 bytes)
    worker -> coordinator   nonce_w + HMAC(key, b"...client:" + nonce_s)
    coordinator -> worker   HMAC(key, b"...server:" + nonce_w)

The key is shared out of band: :class:`~repro.executor.queue.QueueExecutor`
exports it to the workers it spawns via the ``REPRO_QUEUE_AUTH``
environment variable, and operators hand it to remote workers the same way
(or via ``--auth-file``).  Even so, do not expose a coordinator to
untrusted networks — serving untrusted peers is the netservice's job, which
speaks JSON precisely because its tenants are untrusted.

Every message is a dict with a ``"type"`` key; malformed or oversized frames
raise :class:`~repro.executor.errors.QueueProtocolError`, connection drops
raise :class:`~repro.executor.errors.WorkerConnectionLost` (retryable on the
worker side, lease-requeueing on the coordinator side).
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import socket
import struct
from typing import Any, Dict, Union

from repro.executor.errors import (
    QueueAuthError,
    QueueProtocolError,
    WorkerConnectionLost,
)

MAGIC = b"RQ"
PROTOCOL_VERSION = 1
_PREAMBLE = struct.Struct("!2sBI")

#: Environment variable carrying the shared auth key to worker processes.
AUTH_ENV_VAR = "REPRO_QUEUE_AUTH"

AUTH_MAGIC = b"RQA"
_NONCE_BYTES = 32
_DIGEST_BYTES = hashlib.sha256().digest_size
_CLIENT_SALT = b"repro-queue-client:"
_SERVER_SALT = b"repro-queue-server:"

#: Ceiling on one message body.  Chunk results dominate frame size; 256 MB
#: comfortably holds paper-scale chunks while bounding what a corrupted
#: length prefix can make either side allocate.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message dict into a frame."""
    if not isinstance(message, dict) or "type" not in message:
        raise QueueProtocolError(
            f"queue messages must be dicts with a 'type' key, got {type(message).__name__}"
        )
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _PREAMBLE.pack(MAGIC, PROTOCOL_VERSION, len(body)) + body


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket or raise."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout:
            raise
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise WorkerConnectionLost(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise WorkerConnectionLost(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message over a blocking socket."""
    frame = encode_message(message)
    try:
        sock.sendall(frame)
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise WorkerConnectionLost(f"connection lost while sending: {exc}") from exc


def recv_message(
    sock: socket.socket, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Read one message from a blocking socket."""
    raw = _recv_exactly(sock, _PREAMBLE.size)
    magic, version, body_len = _PREAMBLE.unpack(raw)
    if magic != MAGIC:
        raise QueueProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise QueueProtocolError(
            f"unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )
    if body_len > max_frame_bytes:
        raise QueueProtocolError(
            f"frame body length {body_len} exceeds max_frame_bytes={max_frame_bytes}"
        )
    body = _recv_exactly(sock, body_len)
    try:
        message = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise QueueProtocolError(f"frame body is not a valid pickle: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise QueueProtocolError("frame body must be a dict with a 'type' key")
    return message


# ------------------------------------------------------------ authentication


def normalize_auth_key(key: Union[str, bytes]) -> bytes:
    """Coerce an auth key to the HMAC key bytes (keys are operator strings)."""
    if isinstance(key, bytes):
        material = key
    elif isinstance(key, str):
        material = key.encode("utf-8")
    else:
        raise TypeError(f"auth key must be str or bytes, got {type(key).__name__}")
    if not material:
        raise ValueError("auth key must be non-empty")
    return material


def _digest(key: bytes, salt: bytes, nonce: bytes) -> bytes:
    return hmac.new(key, salt + nonce, hashlib.sha256).digest()


def server_authenticate(sock: socket.socket, key: Union[str, bytes]) -> None:
    """Coordinator side of the mutual shared-key handshake.

    Challenges the connecting peer and proves our own knowledge of the key
    back; raises :class:`QueueAuthError` on a wrong answer and closes without
    ever parsing attacker-controlled lengths or pickles.
    """
    material = normalize_auth_key(key)
    nonce_s = os.urandom(_NONCE_BYTES)
    try:
        sock.sendall(AUTH_MAGIC + bytes([PROTOCOL_VERSION]) + nonce_s)
        reply = _recv_exactly(sock, _NONCE_BYTES + _DIGEST_BYTES)
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise WorkerConnectionLost(f"connection lost during auth: {exc}") from exc
    nonce_c, answer = reply[:_NONCE_BYTES], reply[_NONCE_BYTES:]
    if not hmac.compare_digest(answer, _digest(material, _CLIENT_SALT, nonce_s)):
        raise QueueAuthError(
            "peer failed the shared-key challenge (wrong or missing auth key)"
        )
    try:
        sock.sendall(_digest(material, _SERVER_SALT, nonce_c))
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise WorkerConnectionLost(f"connection lost during auth: {exc}") from exc


def client_authenticate(sock: socket.socket, key: Union[str, bytes]) -> None:
    """Worker side of the mutual shared-key handshake.

    Answers the coordinator's challenge and then requires the coordinator to
    prove it holds the same key — a worker must never execute a pickled
    lease from a peer that cannot (raises :class:`QueueAuthError`).
    """
    material = normalize_auth_key(key)
    challenge = _recv_exactly(sock, len(AUTH_MAGIC) + 1 + _NONCE_BYTES)
    if challenge[: len(AUTH_MAGIC)] != AUTH_MAGIC:
        raise QueueAuthError(
            "coordinator did not open with an auth challenge "
            "(mismatched protocol build?)"
        )
    version = challenge[len(AUTH_MAGIC)]
    if version != PROTOCOL_VERSION:
        raise QueueProtocolError(
            f"unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )
    nonce_s = challenge[len(AUTH_MAGIC) + 1 :]
    nonce_c = os.urandom(_NONCE_BYTES)
    try:
        sock.sendall(nonce_c + _digest(material, _CLIENT_SALT, nonce_s))
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise WorkerConnectionLost(f"connection lost during auth: {exc}") from exc
    proof = _recv_exactly(sock, _DIGEST_BYTES)
    if not hmac.compare_digest(proof, _digest(material, _SERVER_SALT, nonce_c)):
        raise QueueAuthError(
            "coordinator failed to prove knowledge of the shared auth key; "
            "refusing to execute leases from it"
        )
