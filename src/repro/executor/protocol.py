"""Length-prefixed message frames for the work-queue wire.

Same preamble idiom as :mod:`repro.netservice.protocol` — magic, version,
big-endian payload length::

    +-------+---------+----------------+------------------------+
    | magic | version | body length    |   body (pickle)        |
    | b"RQ" | 1 byte  | uint32 big-end |   bl bytes             |
    +-------+---------+----------------+------------------------+

— but the body is a **pickle**, not JSON+arrays: leases carry frozen
:class:`~repro.experiments.base.Job` values (nested frozen dataclasses) and
results carry :class:`~repro.utils.results.RunResult` objects, both of which
pickle round-trips bit-exactly for free.

Trust model: pickle makes this a **trusted-worker** protocol.  Coordinator
and workers are the same codebase run by the same operator (the coordinator
spawns local workers itself; remote workers are started by the operator with
``python -m repro.executor worker --connect``).  Do not point a worker at an
untrusted coordinator or expose a coordinator to untrusted networks — that
is the netservice's job, which speaks JSON precisely because its peers are
untrusted tenants.

Every message is a dict with a ``"type"`` key; malformed or oversized frames
raise :class:`~repro.executor.errors.QueueProtocolError`, connection drops
raise :class:`~repro.executor.errors.WorkerConnectionLost` (retryable on the
worker side, lease-requeueing on the coordinator side).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict

from repro.executor.errors import QueueProtocolError, WorkerConnectionLost

MAGIC = b"RQ"
PROTOCOL_VERSION = 1
_PREAMBLE = struct.Struct("!2sBI")

#: Ceiling on one message body.  Chunk results dominate frame size; 256 MB
#: comfortably holds paper-scale chunks while bounding what a corrupted
#: length prefix can make either side allocate.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message dict into a frame."""
    if not isinstance(message, dict) or "type" not in message:
        raise QueueProtocolError(
            f"queue messages must be dicts with a 'type' key, got {type(message).__name__}"
        )
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _PREAMBLE.pack(MAGIC, PROTOCOL_VERSION, len(body)) + body


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket or raise."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout:
            raise
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise WorkerConnectionLost(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise WorkerConnectionLost(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message over a blocking socket."""
    frame = encode_message(message)
    try:
        sock.sendall(frame)
    except socket.timeout:
        raise
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise WorkerConnectionLost(f"connection lost while sending: {exc}") from exc


def recv_message(
    sock: socket.socket, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Read one message from a blocking socket."""
    raw = _recv_exactly(sock, _PREAMBLE.size)
    magic, version, body_len = _PREAMBLE.unpack(raw)
    if magic != MAGIC:
        raise QueueProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise QueueProtocolError(
            f"unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )
    if body_len > max_frame_bytes:
        raise QueueProtocolError(
            f"frame body length {body_len} exceeds max_frame_bytes={max_frame_bytes}"
        )
    body = _recv_exactly(sock, body_len)
    try:
        message = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise QueueProtocolError(f"frame body is not a valid pickle: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise QueueProtocolError("frame body must be a dict with a 'type' key")
    return message
