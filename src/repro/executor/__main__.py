"""``python -m repro.executor`` — worker process entry point."""

import sys

from repro.executor.cli import main

sys.exit(main())
