"""The TCP work-queue backend: coordinator + :class:`QueueExecutor`.

The coordinator owns the job grid.  It chunks the grid
(:mod:`repro.executor.chunking`), listens on a TCP port, and *leases* chunks
to whichever workers connect — local subprocesses it spawned itself, or
remote processes started with ``python -m repro.executor worker --connect
host:port``.  The protections that make this safe under worker failure:

* **Idempotency** — every chunk has a deterministic key; the first result
  frame per key wins, later duplicates (a retried lease racing its original
  holder) are counted and dropped, never double-assembled.
* **Lease expiry** — each lease carries a heartbeat deadline; a worker that
  stops heartbeating (killed, wedged, partitioned) has its chunk re-queued
  by the reaper thread.  A dropped connection re-queues immediately.
* **Journal** — completed chunks append to a JSONL journal
  (:mod:`repro.executor.journal`); ``resume=`` replays completed chunks
  from a previous (possibly truncated) journal without re-running them.

Determinism: results are slotted by chunk index and flattened in grid
order, so the assembled result list is bit-identical to
:class:`~repro.executor.base.SerialExecutor` no matter which worker ran
what, in what order, or how many leases were retried.
"""

from __future__ import annotations

import ipaddress
import os
import secrets
import socket
import subprocess
import sys
import threading
import time
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.executor.base import (
    CancelToken,
    Executor,
    ExecutorEvent,
    ProgressHook,
    emit,
)
from repro.executor.chunking import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    chunk_jobs,
    grid_fingerprint,
)
from repro.executor.errors import (
    ExecutionCancelled,
    ExecutorError,
    JobFailedError,
    QueueAuthError,
    QueueProtocolError,
    WorkerConnectionLost,
)
from repro.executor.journal import JournalWriter, read_journal
from repro.executor.protocol import (
    AUTH_ENV_VAR,
    DEFAULT_MAX_FRAME_BYTES,
    normalize_auth_key,
    recv_message,
    send_message,
    server_authenticate,
)

#: Default heartbeat interval leased to workers.
DEFAULT_HEARTBEAT_S = 0.5
#: Lease expires after this many missed heartbeat intervals.
LEASE_TIMEOUT_FACTOR = 6.0
#: Delay a worker is told to wait before re-asking when no work is pending.
WAIT_DELAY_S = 0.05


def _is_loopback_host(host: str) -> bool:
    """True when ``host`` can only be reached from this machine."""
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


class _Lease:
    """One outstanding chunk lease (chunk, holder, heartbeat deadline)."""

    __slots__ = ("chunk", "worker", "deadline")

    def __init__(self, chunk: Chunk, worker: str, deadline: float) -> None:
        self.chunk = chunk
        self.worker = worker
        self.deadline = deadline


class _CoordinatorState:
    """Shared mutable state guarded by one lock."""

    def __init__(self, chunks: Sequence[Chunk]) -> None:
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.chunks = list(chunks)
        self.pending = deque(chunk.index for chunk in chunks)
        self.leases: Dict[str, _Lease] = {}
        self.completed: Dict[str, List] = {}
        self.failure: Optional[BaseException] = None
        self.stats = {
            "chunks_total": len(chunks),
            "chunks_executed": 0,
            "chunks_resumed": 0,
            "chunks_requeued": 0,
            "duplicate_results": 0,
            "workers_spawned": 0,
            "workers_respawned": 0,
            "worker_connections": 0,
        }

    def fail(self, exc: BaseException) -> None:
        with self.lock:
            if self.failure is None:
                self.failure = exc
        self.done.set()


class QueueExecutor(Executor):
    """Distributed execution over a local TCP work-queue coordinator.

    Parameters
    ----------
    n_workers:
        Local worker subprocesses to spawn (``0`` with ``serve_only`` mode
        relies entirely on externally attached workers).
    chunk_size:
        Jobs per lease (see :data:`~repro.executor.chunking.DEFAULT_CHUNK_SIZE`).
    host / port:
        Bind address of the coordinator; ``port=0`` picks a free port.
    auth_key:
        Shared secret for the mutual HMAC handshake every connection must
        pass before any pickle frame is parsed (see
        :mod:`repro.executor.protocol`).  ``None`` falls back to the
        ``REPRO_QUEUE_AUTH`` environment variable, then — for loopback
        binds only — to a fresh random key private to this run (spawned
        local workers inherit it via the environment).  Binding a
        non-loopback address without an explicit key is refused: it would
        expose a pickle endpoint guarded only by an unguessable-but-unshared
        secret, locking every remote worker out while still advertising the
        port.
    journal:
        Path to write the JSONL progress journal to (optional).
    resume:
        Path of a previous run's journal; completed chunks are replayed
        bit-identically instead of re-run.  May equal ``journal`` (the file
        is read before it is rewritten).
    heartbeat_s / lease_timeout_s:
        Worker heartbeat interval, and how long a silent lease survives
        before the reaper re-queues it (default ``6 x heartbeat_s``).
    worker_args:
        Extra CLI args for the *initially* spawned workers — either one list
        applied to all, or a per-worker list of lists.  Used by the fault
        injection tests (``--fail-after-jobs``); respawned replacements
        always start with clean args, so an injected fault cannot recur
        forever.
    respawn:
        Replace local workers that die before the run completes.
    spawn_timeout_s:
        How long :meth:`submit_jobs` waits for the grid to finish before
        declaring the run stuck.  ``None`` (the default) waits
        indefinitely — set a ceiling whenever workers may never attach
        (e.g. ``n_workers=0`` with remote workers that could fail to
        start).
    """

    name = "queue"

    def __init__(
        self,
        *,
        n_workers: int = 2,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_key: Optional[str] = None,
        journal=None,
        resume=None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_timeout_s: Optional[float] = None,
        worker_args=None,
        respawn: bool = True,
        spawn_timeout_s: Optional[float] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.host = host
        self.port = port
        if auth_key is None:
            auth_key = os.environ.get(AUTH_ENV_VAR) or None
        if auth_key is None:
            if not _is_loopback_host(host):
                raise ValueError(
                    f"refusing to bind coordinator to non-loopback {host!r} "
                    "without an explicit auth key: the work-queue wire "
                    "carries pickles, so every connection must pass the "
                    "shared-key handshake — pass auth_key= (or set "
                    f"{AUTH_ENV_VAR}) and give remote workers the same key"
                )
            auth_key = secrets.token_hex(32)
        normalize_auth_key(auth_key)  # fail fast on empty/invalid keys
        self.auth_key = auth_key
        if not _is_loopback_host(host):
            warnings.warn(
                f"QueueExecutor is binding non-loopback {host!r}: the "
                "work-queue protocol carries pickles and must only be "
                "reachable by trusted workers holding the shared auth key; "
                "prefer loopback plus SSH tunnels on shared networks",
                RuntimeWarning,
                stacklevel=2,
            )
        self.journal = journal
        self.resume = resume
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = (
            LEASE_TIMEOUT_FACTOR * heartbeat_s if lease_timeout_s is None else lease_timeout_s
        )
        self.worker_args = worker_args
        self.respawn = respawn
        self.spawn_timeout_s = spawn_timeout_s
        self.max_frame_bytes = max_frame_bytes
        #: Stats of the most recent :meth:`submit_jobs` call.
        self.stats: Dict[str, int] = {}
        #: Bound address of the most recent run's coordinator.
        self.address = None

    # ------------------------------------------------------------- plumbing

    def _worker_command(self, address, extra_args: Sequence[str]) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro.executor",
            "worker",
            "--connect",
            f"{address[0]}:{address[1]}",
            "--heartbeat",
            str(self.heartbeat_s),
        ] + list(extra_args)

    def _worker_env(self) -> Dict[str, str]:
        """Child env with this repro checkout importable (repro may not be
        installed — the test suite runs it straight off ``src/``)."""
        import repro

        src_root = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        paths = existing.split(os.pathsep) if existing else []
        if src_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join([src_root] + paths)
        env[AUTH_ENV_VAR] = self.auth_key
        return env

    def _initial_args(self, worker_index: int) -> List[str]:
        args = self.worker_args
        if args is None:
            return []
        if args and isinstance(args[0], (list, tuple)):
            return list(args[worker_index]) if worker_index < len(args) else []
        return list(args)

    # ------------------------------------------------------- connection side

    def _serve_connection(self, conn: socket.socket, state, run_job, journal_writer, on_progress):
        """Handle one worker connection until it drops or the run ends."""
        conn_id = f"conn-{id(conn) & 0xFFFF:04x}"
        held: Optional[str] = None  # chunk key currently leased to this conn
        try:
            conn.settimeout(max(1.0, 2 * self.lease_timeout_s))
            # No pickle frame is parsed before the peer proves it holds the
            # run's shared key; a failed challenge just drops the connection.
            server_authenticate(conn, self.auth_key)
            while True:
                message = recv_message(conn, max_frame_bytes=self.max_frame_bytes)
                kind = message.get("type")
                if kind == "hello":
                    with state.lock:
                        state.stats["worker_connections"] += 1
                    conn_id = str(message.get("worker", conn_id))
                    send_message(conn, {"type": "welcome", "heartbeat_s": self.heartbeat_s})
                elif kind == "request":
                    held = self._handle_request(conn, conn_id, state, run_job)
                    if held is None and state.done.is_set():
                        return
                elif kind == "heartbeat":
                    self._handle_heartbeat(state, message.get("key"))
                elif kind == "result":
                    held = None
                    self._handle_result(state, message, journal_writer, on_progress)
                elif kind == "error":
                    held = None
                    state.fail(
                        JobFailedError(
                            f"job failed on worker {conn_id}:\n{message.get('traceback', '')}"
                        )
                    )
                    return
                else:
                    raise QueueProtocolError(f"unexpected message type {kind!r}")
        except (
            WorkerConnectionLost,
            QueueAuthError,
            QueueProtocolError,
            socket.timeout,
            OSError,
        ):
            pass
        finally:
            if held is not None:
                self._requeue(
                    state, held, reason=f"{conn_id} disconnected", holder=conn_id
                )
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, conn, conn_id, state, run_job) -> Optional[str]:
        """Reply to a lease request; returns the leased key (if any)."""
        # Snapshot before taking the lock: submit_jobs' finally block clears
        # self._jobs after the run, and a straggler server thread must see
        # either the full list or a clean "finished" answer, never a slice
        # of None.
        jobs = self._jobs
        with state.lock:
            if jobs is None or state.done.is_set() or state.failure is not None:
                chunk = None
                finished = True
            elif state.pending:
                index = state.pending.popleft()
                chunk = state.chunks[index]
                state.leases[chunk.key] = _Lease(
                    chunk, conn_id, time.monotonic() + self.lease_timeout_s
                )
                finished = False
            else:
                chunk = None
                finished = False
        if chunk is not None:
            send_message(
                conn,
                {
                    "type": "lease",
                    "key": chunk.key,
                    "index": chunk.index,
                    "jobs": list(jobs[chunk.start : chunk.stop]),
                    "run_job": run_job,
                    "heartbeat_s": self.heartbeat_s,
                },
            )
            return chunk.key
        if finished:
            send_message(conn, {"type": "shutdown"})
        else:
            send_message(conn, {"type": "wait", "delay_s": WAIT_DELAY_S})
        return None

    def _handle_heartbeat(self, state, key) -> None:
        with state.lock:
            lease = state.leases.get(key)
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_timeout_s

    def _handle_result(self, state, message, journal_writer, on_progress) -> None:
        key = str(message.get("key"))
        results = message.get("results")
        with state.lock:
            lease = state.leases.pop(key, None)
            chunk = lease.chunk if lease is not None else self._chunk_by_key.get(key)
            if chunk is None:
                raise QueueProtocolError(f"result for unknown chunk key {key!r}")
            if key in state.completed:
                # A requeued lease's original holder finished after all:
                # idempotency key says this chunk is already counted.
                state.stats["duplicate_results"] += 1
                return
            if not isinstance(results, list) or len(results) != chunk.n_jobs:
                # Put the chunk back before dropping the connection — a
                # half-delivered chunk must re-run, not vanish.
                state.pending.appendleft(chunk.index)
                state.stats["chunks_requeued"] += 1
                raise QueueProtocolError(
                    f"chunk {key!r} returned {len(results) if isinstance(results, list) else '?'} "
                    f"results, expected {chunk.n_jobs}"
                )
            state.completed[key] = results
            state.stats["chunks_executed"] += 1
            if journal_writer is not None:
                journal_writer.record_chunk(chunk, results)
            n_done = len(state.completed)
            n_total = len(state.chunks)
            if n_done == n_total:
                state.done.set()
        emit(
            on_progress,
            ExecutorEvent("chunk", n_done, n_total, detail=f"chunk {chunk.index} ({key})"),
        )

    def _requeue(
        self,
        state,
        key: str,
        *,
        reason: str,
        holder: Optional[str] = None,
        expired_only: bool = False,
    ) -> None:
        """Put a leased chunk back on the queue (guardedly).

        ``holder`` restricts the requeue to the lease's current owner —
        without it, a slow disconnect cleanup could kick a chunk that has
        already been re-leased to a healthy worker, triple-running it.
        ``expired_only`` makes the reaper re-check the deadline under the
        lock, so a lease renewed between snapshot and requeue survives.
        """
        with state.lock:
            lease = state.leases.get(key)
            if lease is None or key in state.completed:
                return
            if holder is not None and lease.worker != holder:
                return
            if expired_only and lease.deadline >= time.monotonic():
                return
            state.leases.pop(key)
            state.pending.appendleft(lease.chunk.index)
            state.stats["chunks_requeued"] += 1
            n_done = len(state.completed)
            n_total = len(state.chunks)
        emit(
            self._on_progress,
            ExecutorEvent(
                "requeue", n_done, n_total, detail=f"chunk {lease.chunk.index}: {reason}"
            ),
        )

    def _reap_expired(self, state) -> None:
        """Re-queue every lease whose heartbeat deadline has passed."""
        now = time.monotonic()
        with state.lock:
            expired = [
                (key, lease.worker)
                for key, lease in state.leases.items()
                if lease.deadline < now
            ]
        for key, worker in expired:
            self._requeue(
                state,
                key,
                reason="lease expired (missed heartbeats)",
                holder=worker,
                expired_only=True,
            )

    # --------------------------------------------------------------- driver

    def submit_jobs(self, jobs, *, run_job=None, on_progress=None, cancel=None):
        jobs = list(jobs)
        if not jobs:
            return []
        chunks = chunk_jobs(jobs, self.chunk_size)
        fingerprint = grid_fingerprint(jobs, self.chunk_size)
        state = _CoordinatorState(chunks)
        self._jobs = jobs
        self._chunk_by_key = {chunk.key: chunk for chunk in chunks}
        self._on_progress = on_progress

        resumed = self._load_resume(state, chunks, fingerprint)
        journal_writer = None
        if self.journal is not None:
            journal_writer = JournalWriter(
                self.journal,
                fingerprint=fingerprint,
                total_jobs=len(jobs),
                chunk_size=self.chunk_size,
                chunk_keys=[chunk.key for chunk in chunks],
            )
            # Re-record resumed chunks so the new journal is complete on its
            # own (a second resume never needs the older file).
            for chunk in chunks:
                if chunk.key in resumed:
                    journal_writer.record_chunk(chunk, resumed[chunk.key])

        emit(on_progress, ExecutorEvent("start", len(state.completed), len(chunks)))
        if len(state.completed) == len(chunks):
            state.done.set()

        listener = threading.Thread(target=lambda: None)
        server = None
        workers: List[subprocess.Popen] = []
        threads: List[threading.Thread] = []
        try:
            if not state.done.is_set():
                server = socket.create_server((self.host, self.port))
                server.settimeout(0.1)
                self.address = server.getsockname()

                listener = threading.Thread(
                    target=self._accept_loop,
                    args=(server, state, run_job, journal_writer, on_progress, threads),
                    daemon=True,
                )
                listener.start()
                reaper = threading.Thread(
                    target=self._reaper_loop, args=(state,), daemon=True
                )
                reaper.start()

                workers = self._spawn_workers(state)
                self._wait(state, workers, cancel)
            return self._collect(state, chunks, jobs)
        finally:
            state.done.set()
            if server is not None:
                try:
                    server.close()
                except OSError:
                    pass
            if listener.is_alive():
                listener.join(timeout=2.0)
            for thread in threads:
                thread.join(timeout=2.0)
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            if journal_writer is not None:
                journal_writer.close()
            self.stats = dict(state.stats)
            self._jobs = None
            self._chunk_by_key = {}
            self._on_progress = None

    def _load_resume(self, state, chunks, fingerprint):
        """Replay completed chunks from a previous journal (if any)."""
        resumed = {}
        if self.resume is None:
            return resumed
        journal = read_journal(self.resume, expect_fingerprint=fingerprint)
        with state.lock:
            for chunk in chunks:
                results = journal.completed.get(chunk.key)
                if results is None:
                    continue
                state.completed[chunk.key] = results
                state.stats["chunks_resumed"] += 1
                resumed[chunk.key] = results
            state.pending = deque(
                chunk.index for chunk in chunks if chunk.key not in state.completed
            )
        for chunk in chunks:
            if chunk.key in resumed:
                emit(
                    self._on_progress,
                    ExecutorEvent(
                        "resume",
                        len(resumed),
                        len(chunks),
                        detail=f"chunk {chunk.index} replayed from journal",
                    ),
                )
        return resumed

    def _accept_loop(self, server, state, run_job, journal_writer, on_progress, threads):
        while not state.done.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, state, run_job, journal_writer, on_progress),
                daemon=True,
            )
            thread.start()
            threads.append(thread)

    def _reaper_loop(self, state):
        interval = max(0.05, self.heartbeat_s / 2)
        while not state.done.wait(interval):
            self._reap_expired(state)

    def _spawn_workers(self, state) -> List[subprocess.Popen]:
        workers = []
        env = self._worker_env() if self.n_workers else None
        for index in range(self.n_workers):
            command = self._worker_command(self.address, self._initial_args(index))
            workers.append(subprocess.Popen(command, env=env))
            state.stats["workers_spawned"] += 1
        return workers

    def _wait(self, state, workers, cancel) -> None:
        """Block until the grid completes, respawning dead local workers."""
        deadline = None
        if self.spawn_timeout_s is not None:
            deadline = time.monotonic() + self.spawn_timeout_s
        while not state.done.wait(0.1):
            if cancel is not None and cancel.is_set():
                state.fail(ExecutionCancelled("queue run cancelled"))
                return
            if deadline is not None and time.monotonic() > deadline:
                state.fail(
                    ExecutorError(
                        f"queue run did not complete within spawn_timeout_s="
                        f"{self.spawn_timeout_s}"
                    )
                )
                return
            for index, proc in enumerate(workers):
                if proc.poll() is not None and self.respawn:
                    # Replacements always get clean args: an injected fault
                    # (--fail-after-jobs) must not follow the respawn.
                    command = self._worker_command(self.address, [])
                    workers[index] = subprocess.Popen(command, env=self._worker_env())
                    state.stats["workers_respawned"] += 1

    def _collect(self, state, chunks, jobs):
        with state.lock:
            failure = state.failure
            completed = dict(state.completed)
        if failure is not None:
            raise failure
        missing = [chunk.index for chunk in chunks if chunk.key not in completed]
        if missing:
            raise ExecutorError(f"queue run ended with incomplete chunks {missing}")
        results = []
        for chunk in chunks:
            results.extend(completed[chunk.key])
        emit(self._on_progress, ExecutorEvent("done", len(chunks), len(chunks)))
        if len(results) != len(jobs):
            raise ExecutorError(
                f"assembled {len(results)} results for {len(jobs)} jobs"
            )
        return results
