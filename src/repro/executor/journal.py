"""Resumable JSONL progress journal for the work-queue executor.

One journal file describes one run of one job grid:

* line 1 — a ``run`` header: schema version, the grid fingerprint from
  :func:`~repro.executor.chunking.grid_fingerprint`, the chunk geometry and
  every chunk key in order;
* then one ``chunk`` record per *completed* chunk (any order), carrying the
  chunk key and its results in wire form.

Appending one line per completed chunk makes the journal crash-tolerant: a
coordinator killed mid-write leaves at most one truncated trailing line,
which :func:`read_journal` tolerates (the chunk simply re-runs on resume).
``QueueExecutor(resume=path)`` replays completed chunks from the journal —
**bit-identically**, because the wire form below preserves array dtype,
shape and raw bytes, and pickles result metadata rather than lossily
round-tripping it through JSON.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.executor.errors import JournalMismatchError
from repro.utils.results import RunResult

#: Journal schema version (bump on incompatible record changes).
JOURNAL_VERSION = 1


# -------------------------------------------------------------- wire form


def result_to_wire(result: RunResult) -> Dict[str, Any]:
    """Encode one :class:`RunResult` for a journal/wire record, losslessly.

    Arrays keep dtype + shape + raw ``tobytes`` payload (base64); metadata
    is pickled (base64) because it legitimately holds tuples and numpy
    scalars that a plain JSON round-trip would mangle, breaking the
    bit-identity contract between resumed and fresh runs.
    """
    arrays = {}
    for name, array in result.arrays.items():
        array = np.ascontiguousarray(array)
        arrays[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode("ascii"),
        }
    return {
        "name": result.name,
        "metrics": {key: float(value) for key, value in result.metrics.items()},
        "arrays": arrays,
        "metadata": base64.b64encode(
            pickle.dumps(result.metadata, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def result_from_wire(payload: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_wire`."""
    result = RunResult(name=str(payload["name"]))
    result.metrics = {k: float(v) for k, v in payload.get("metrics", {}).items()}
    for name, spec in payload.get("arrays", {}).items():
        raw = base64.b64decode(spec["data"])
        result.arrays[name] = (
            np.frombuffer(raw, dtype=spec["dtype"])
            .reshape(tuple(spec["shape"]))
            .copy()
        )
    result.metadata = pickle.loads(base64.b64decode(payload["metadata"]))
    return result


# ---------------------------------------------------------------- writing


class JournalWriter:
    """Append-only JSONL journal (header on open, one line per chunk)."""

    def __init__(
        self,
        path,
        *,
        fingerprint: str,
        total_jobs: int,
        chunk_size: int,
        chunk_keys: List[str],
    ) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write(
            {
                "event": "run",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "total_jobs": total_jobs,
                "chunk_size": chunk_size,
                "n_chunks": len(chunk_keys),
                "chunk_keys": list(chunk_keys),
            }
        )

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()

    def record_chunk(self, chunk, results: List[RunResult]) -> None:
        """Append one completed chunk (flushed immediately)."""
        self._write(
            {
                "event": "chunk",
                "key": chunk.key,
                "index": chunk.index,
                "results": [result_to_wire(result) for result in results],
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------- reading


@dataclass
class JournalState:
    """Parsed journal: the run header + every completed chunk's results."""

    fingerprint: str
    total_jobs: int
    chunk_size: int
    n_chunks: int
    chunk_keys: List[str]
    completed: Dict[str, List[RunResult]] = field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return len(self.completed)


def read_journal(path, *, expect_fingerprint: Optional[str] = None) -> JournalState:
    """Parse a journal, tolerating a truncated trailing line.

    ``expect_fingerprint`` (when given) must match the header exactly; a
    mismatch means the journal describes a different grid or geometry and
    raises :class:`JournalMismatchError` instead of corrupting the run.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise JournalMismatchError(f"journal {path} is empty (no run header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalMismatchError(f"journal {path} has a corrupt header: {exc}") from None
    if header.get("event") != "run":
        raise JournalMismatchError(
            f"journal {path} does not start with a run header (got {header.get('event')!r})"
        )
    if header.get("version") != JOURNAL_VERSION:
        raise JournalMismatchError(
            f"journal {path} has schema version {header.get('version')!r}; "
            f"this build reads version {JOURNAL_VERSION}"
        )
    state = JournalState(
        fingerprint=str(header["fingerprint"]),
        total_jobs=int(header["total_jobs"]),
        chunk_size=int(header["chunk_size"]),
        n_chunks=int(header["n_chunks"]),
        chunk_keys=[str(key) for key in header["chunk_keys"]],
    )
    if expect_fingerprint is not None and state.fingerprint != expect_fingerprint:
        raise JournalMismatchError(
            f"journal {path} records fingerprint {state.fingerprint[:12]}..., "
            f"but the submitted grid has {expect_fingerprint[:12]}...; "
            "refusing to splice foreign results into this run"
        )
    known = set(state.chunk_keys)
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # A truncated tail is the expected crash artefact: ignore it and
            # let the chunk re-run.  Anything *before* the last line that
            # fails to parse is real corruption.
            if lineno == len(lines):
                break
            raise JournalMismatchError(
                f"journal {path} line {lineno} is corrupt (not the trailing line)"
            )
        if record.get("event") != "chunk":
            continue
        key = str(record.get("key"))
        if key not in known:
            raise JournalMismatchError(
                f"journal {path} line {lineno} records unknown chunk key {key!r}"
            )
        state.completed[key] = [
            result_from_wire(entry) for entry in record.get("results", [])
        ]
    return state
