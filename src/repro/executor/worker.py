"""Work-queue worker: lease chunks, execute, report, heartbeat, reconnect.

Run directly (``python -m repro.executor worker --connect host:port``) on any
machine that can import :mod:`repro` — the coordinator spawns local copies
of exactly this entry point, so "remote" and "local" workers are the same
code path.  The loop:

1. connect to the coordinator (jittered exponential backoff on failure,
   like :class:`repro.netservice.NetClient` retries);
2. ``hello`` -> ``request`` -> receive a chunk ``lease`` / a ``wait`` hint /
   a ``shutdown``;
3. execute the lease's jobs (through the lease's pickled ``run_job`` or the
   registry trampoline), sending ``heartbeat`` frames from a side thread so
   the coordinator can tell *slow* from *dead*;
4. send the chunk's results under its idempotency key and ask for more.

A lost connection mid-anything is retryable: the worker reconnects and asks
again; the coordinator's lease expiry + completed-key dedup guarantee the
grid still assembles exactly once.

Fault injection (tests only): ``--fail-after-jobs N`` makes the process die
hard (``os._exit``) after N jobs total — mid-chunk when N is not aligned to
a chunk boundary — to exercise lease re-queue and journal resume.
"""

from __future__ import annotations

import os
import random
import socket
import sys
import threading
import time
import traceback
from typing import Optional, Tuple

from repro.executor.errors import (
    QueueAuthError,
    QueueProtocolError,
    WorkerConnectionLost,
)
from repro.executor.protocol import (
    AUTH_ENV_VAR,
    client_authenticate,
    recv_message,
    send_message,
)

#: Reconnect backoff: base * 2**(attempt-1), capped, plus up to 25% jitter.
BACKOFF_BASE_S = 0.05
BACKOFF_MAX_S = 2.0
#: Exit code of a worker that gives up reconnecting.
EXIT_NO_COORDINATOR = 3
#: Exit code of a worker whose shared-key handshake failed (or had no key).
EXIT_AUTH_FAILED = 4
#: Exit code of an injected --fail-after-jobs death (asserted by tests).
EXIT_INJECTED_FAULT = 17


def _backoff_delay(attempt: int, rng: random.Random) -> float:
    delay = min(BACKOFF_BASE_S * (2 ** (attempt - 1)), BACKOFF_MAX_S)
    return delay * (1.0 + 0.25 * rng.random())


def _connect(address: Tuple[str, int], *, attempts: int, rng: random.Random):
    """Dial the coordinator with jittered exponential backoff."""
    last_error: Optional[Exception] = None
    for attempt in range(1, attempts + 1):
        try:
            sock = socket.create_connection(address, timeout=10.0)
            sock.settimeout(30.0)
            return sock
        except OSError as exc:
            last_error = exc
            if attempt < attempts:
                time.sleep(_backoff_delay(attempt, rng))
    raise WorkerConnectionLost(
        f"could not reach coordinator at {address[0]}:{address[1]} "
        f"after {attempts} attempts: {last_error}"
    )


class _Heartbeat:
    """Background thread sending heartbeats for the active lease.

    Shares the connection with the main thread, so every send goes through
    one lock — frames must never interleave mid-stream.
    """

    def __init__(self, sock, send_lock: threading.Lock, key: str, interval_s: float):
        self._sock = sock
        self._lock = send_lock
        self._key = key
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    send_message(self._sock, {"type": "heartbeat", "key": self._key})
            except (WorkerConnectionLost, OSError):
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def _execute_lease(lease, sock, send_lock, fault_state) -> None:
    """Run one leased chunk and report results (or the failure) back."""
    from repro.executor.base import _job_runner

    key = lease["key"]
    call = _job_runner(lease.get("run_job"))
    results = []
    try:
        with _Heartbeat(sock, send_lock, key, float(lease.get("heartbeat_s", 0.5))):
            for job in lease["jobs"]:
                results.append(call(job))
                if fault_state is not None:
                    fault_state["executed"] += 1
                    if fault_state["executed"] >= fault_state["fail_after"]:
                        # Die *hard*, mid-chunk: no result frame, no socket
                        # shutdown handshake — exactly what a crashed or
                        # OOM-killed box looks like to the coordinator.
                        os._exit(EXIT_INJECTED_FAULT)
    except Exception:
        with send_lock:
            send_message(
                sock,
                {"type": "error", "key": key, "traceback": traceback.format_exc()},
            )
        raise
    with send_lock:
        send_message(sock, {"type": "result", "key": key, "results": results})


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    auth_key: Optional[str] = None,
    heartbeat_s: float = 0.5,
    max_connect_attempts: int = 8,
    fail_after_jobs: Optional[int] = None,
) -> int:
    """Worker main loop; returns a process exit code.

    ``auth_key`` (default: the ``REPRO_QUEUE_AUTH`` environment variable,
    which spawned local workers inherit from their coordinator) is the
    shared secret for the mutual handshake — a worker without one exits
    immediately with ``EXIT_AUTH_FAILED``, and one whose coordinator cannot
    prove knowledge of the key refuses to execute its leases.

    Reconnects (with backoff) whenever the coordinator connection drops
    mid-run; exits ``0`` on a clean ``shutdown``, ``EXIT_NO_COORDINATOR``
    when the coordinator stays unreachable — which is also the normal end of
    life for a worker that outlives its run.  A coordinator that keeps
    dropping the connection before ever welcoming us (e.g. it rejects our
    key) is also bounded by ``max_connect_attempts``.
    """
    worker_id = worker_id or f"worker-{os.getpid()}"
    if auth_key is None:
        auth_key = os.environ.get(AUTH_ENV_VAR) or None
    if auth_key is None:
        print(
            f"worker {worker_id}: no auth key — pass --auth-file or set "
            f"{AUTH_ENV_VAR} to the coordinator's shared key",
            file=sys.stderr,
        )
        return EXIT_AUTH_FAILED
    rng = random.Random(os.getpid())
    address = (host, port)
    fault_state = (
        {"executed": 0, "fail_after": fail_after_jobs} if fail_after_jobs else None
    )
    failures_before_welcome = 0
    while True:
        try:
            sock = _connect(address, attempts=max_connect_attempts, rng=rng)
        except WorkerConnectionLost:
            return EXIT_NO_COORDINATOR
        send_lock = threading.Lock()
        welcomed = False
        try:
            client_authenticate(sock, auth_key)
            with send_lock:
                send_message(sock, {"type": "hello", "worker": worker_id})
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise QueueProtocolError(
                    f"expected welcome, got {welcome.get('type')!r}"
                )
            welcomed = True
            failures_before_welcome = 0
            while True:
                with send_lock:
                    send_message(sock, {"type": "request"})
                reply = recv_message(sock)
                kind = reply.get("type")
                if kind == "lease":
                    _execute_lease(reply, sock, send_lock, fault_state)
                elif kind == "wait":
                    time.sleep(float(reply.get("delay_s", 0.05)))
                elif kind == "shutdown":
                    return 0
                else:
                    raise QueueProtocolError(f"unexpected reply type {kind!r}")
        except QueueAuthError as exc:
            print(f"worker {worker_id}: {exc}", file=sys.stderr)
            return EXIT_AUTH_FAILED
        except (WorkerConnectionLost, QueueProtocolError, socket.timeout, OSError):
            # Retryable: reconnect and ask again.  The coordinator's lease
            # expiry + idempotency keys make the retry safe.  But a peer
            # that keeps hanging up before the handshake/welcome completes
            # (it rejected our key, or is not a coordinator at all) will
            # never improve — give up after the same bounded attempt count.
            if not welcomed:
                failures_before_welcome += 1
                if failures_before_welcome >= max_connect_attempts:
                    print(
                        f"worker {worker_id}: coordinator at {host}:{port} "
                        f"dropped {failures_before_welcome} consecutive "
                        "connections before completing the handshake "
                        "(auth key mismatch?)",
                        file=sys.stderr,
                    )
                    return EXIT_AUTH_FAILED
            time.sleep(_backoff_delay(1, rng))
        except Exception:
            # _execute_lease already reported the traceback; the job failure
            # is terminal for the run, so the worker can exit.
            return 1
        finally:
            try:
                sock.close()
            except OSError:
                pass
