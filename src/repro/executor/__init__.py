"""Pluggable execution backends for experiment job grids.

Public surface::

    from repro.executor import (
        Executor, SerialExecutor, PoolExecutor, QueueExecutor,
        CancelToken, ExecutorEvent, resolve_executor,
    )

    result = experiment.run("bench", executor=QueueExecutor(n_workers=4))

See :mod:`repro.executor.base` for the API contract (ordered, bit-identical
results under every backend) and :mod:`repro.executor.queue` for the
distributed work-queue (leases, idempotency keys, heartbeats, resumable
JSONL journal).
"""

from repro.executor.base import (
    EXECUTOR_NAMES,
    CancelToken,
    Executor,
    ExecutorEvent,
    PoolExecutor,
    SerialExecutor,
    coerce_executor,
    resolve_executor,
)
from repro.executor.chunking import Chunk, chunk_jobs, grid_fingerprint
from repro.executor.errors import (
    ExecutionCancelled,
    ExecutorError,
    JobFailedError,
    JournalMismatchError,
    QueueAuthError,
    QueueProtocolError,
    WorkerConnectionLost,
)
from repro.executor.journal import JournalWriter, read_journal
from repro.executor.queue import QueueExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "CancelToken",
    "Chunk",
    "ExecutionCancelled",
    "Executor",
    "ExecutorError",
    "ExecutorEvent",
    "JobFailedError",
    "JournalMismatchError",
    "JournalWriter",
    "PoolExecutor",
    "QueueAuthError",
    "QueueExecutor",
    "QueueProtocolError",
    "SerialExecutor",
    "WorkerConnectionLost",
    "chunk_jobs",
    "coerce_executor",
    "grid_fingerprint",
    "read_journal",
    "resolve_executor",
]
