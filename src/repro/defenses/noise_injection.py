"""Inference-time defence: randomised dummy power draw.

A defender who cannot change the conductance mapping can still blunt the side
channel by drawing additional, input-dependent-but-random current during each
inference — e.g. activating a dummy crossbar column with a random conductance,
or randomising the order/duty-cycle of the read pulses.  This module models
that class of countermeasure as a wrapper around any object exposing
``total_current`` (a tile or a whole accelerator): the functional outputs are
untouched, only the power observable is distorted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_rng, sample_stream
from repro.utils.validation import check_non_negative

#: Stream-path domain tag for defence noise (see :func:`sample_stream`).
_DEFENSE_DOMAIN = 4
_JITTER_CHANNEL = 0
_DUMMY_CHANNEL = 1


class PowerNoiseDefense:
    """Wraps a crossbar target and randomises its observable power draw.

    Parameters
    ----------
    target:
        A :class:`~repro.crossbar.tile.CrossbarTile` or
        :class:`~repro.crossbar.accelerator.CrossbarAccelerator`.
    dummy_current_scale:
        Mean of the random dummy current added per inference, expressed as a
        fraction of the target's typical total current (estimated lazily from
        the first measurements).  ``0.5`` adds on average 50% extra draw.
    jitter:
        Multiplicative jitter applied to the *real* current (models random
        read duty-cycling); ``0.1`` = ±10% uniform.
    random_state:
        Seed for the defence's randomness.
    """

    def __init__(
        self,
        target,
        *,
        dummy_current_scale: float = 0.5,
        jitter: float = 0.1,
        random_state: RandomState = None,
    ):
        self.target = target
        self.dummy_current_scale = check_non_negative(
            dummy_current_scale, "dummy_current_scale"
        )
        self.jitter = check_non_negative(jitter, "jitter")
        self._rng = as_rng(random_state)
        self._reference_current: Optional[float] = None

    # ------------------------------------------------------- passthrough API

    def forward(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """Functional outputs are unaffected by the defence."""
        if sample_seeds is not None:
            return self.target.forward(inputs, sample_seeds=sample_seeds)
        return self.target.forward(inputs)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward`."""
        return self.forward(inputs)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Labels are unaffected by the defence."""
        return self.target.predict_labels(inputs)

    @property
    def n_outputs(self) -> int:
        """Output dimensionality of the wrapped target."""
        return self.target.n_outputs

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # --------------------------------------------------------- power channel

    def _update_reference(self, currents: np.ndarray) -> float:
        observed = float(np.mean(np.abs(currents))) if np.size(currents) else 0.0
        if self._reference_current is None:
            self._reference_current = observed if observed > 0 else 1.0
        return self._reference_current

    def _defend(self, real: np.ndarray, sample_seeds=None) -> np.ndarray:
        """Distort the observable currents (jitter + dummy draw).

        Without seeds this is the historical behaviour: draws come from the
        defence's own generator and the dummy scale references the *mean*
        magnitude of the first observed batch (shared lazy state).  With
        per-row ``sample_seeds`` every draw comes from the row's derived
        stream and the dummy scale references that row's own current, so a
        row's defended value is a pure function of ``(row, seed)`` —
        batch-composition-invariant, as the coalescing service requires.
        """
        defended = real.copy()
        if sample_seeds is None:
            reference = self._update_reference(real)
            if self.jitter > 0:
                defended = defended * (
                    1.0
                    + self._rng.uniform(-self.jitter, self.jitter, size=defended.shape)
                )
            if self.dummy_current_scale > 0:
                dummy = self._rng.exponential(
                    self.dummy_current_scale * reference, size=defended.shape
                )
                defended = defended + dummy
            return defended
        for i, seed in enumerate(np.asarray(sample_seeds, dtype=np.uint64)):
            reference = abs(float(real[i])) or 1.0
            if self.jitter > 0:
                rng = sample_stream(seed, _DEFENSE_DOMAIN, _JITTER_CHANNEL)
                defended[i] *= 1.0 + rng.uniform(-self.jitter, self.jitter)
            if self.dummy_current_scale > 0:
                rng = sample_stream(seed, _DEFENSE_DOMAIN, _DUMMY_CHANNEL)
                defended[i] += rng.exponential(self.dummy_current_scale * reference)
        return defended

    def total_current(self, inputs: np.ndarray, *, sample_seeds=None) -> np.ndarray:
        """The defended power observable: jittered real current + dummy draw."""
        inputs = np.asarray(inputs, dtype=float)
        single = inputs.ndim == 1
        if sample_seeds is not None:
            real = np.atleast_1d(
                np.asarray(
                    self.target.total_current(inputs, sample_seeds=sample_seeds),
                    dtype=float,
                )
            )
        else:
            real = np.atleast_1d(
                np.asarray(self.target.total_current(inputs), dtype=float)
            )
        defended = self._defend(real, sample_seeds)
        return float(defended[0]) if single else defended

    def forward_with_power(self, inputs: np.ndarray, *, sample_seeds=None):
        """Fused passthrough: the target's outputs with a defended power report.

        Requires a target exposing ``forward_with_power`` (an accelerator).
        The report's summed total current is defended; the per-tile columns
        are passed through unchanged — the defence sits on the package supply
        rail, not inside the individual tile rails.
        """
        outputs, report = self.target.forward_with_power(
            inputs, sample_seeds=sample_seeds
        )
        defended = self._defend(np.atleast_1d(report.total_current), sample_seeds)
        per_tile = [
            report.per_tile_current[:, k] for k in range(report.per_tile_current.shape[1])
        ]
        defended_report = self.target.power_model.report(
            defended, per_tile, labels=report.tile_labels
        )
        return outputs, defended_report

    @property
    def overhead_factor(self) -> float:
        """Expected relative increase in average power caused by the defence."""
        return 1.0 + self.dummy_current_scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerNoiseDefense(dummy_current_scale={self.dummy_current_scale}, "
            f"jitter={self.jitter})"
        )
