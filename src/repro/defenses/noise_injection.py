"""Inference-time defence: randomised dummy power draw.

A defender who cannot change the conductance mapping can still blunt the side
channel by drawing additional, input-dependent-but-random current during each
inference — e.g. activating a dummy crossbar column with a random conductance,
or randomising the order/duty-cycle of the read pulses.  This module models
that class of countermeasure as a wrapper around any object exposing
``total_current`` (a tile or a whole accelerator): the functional outputs are
untouched, only the power observable is distorted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_non_negative


class PowerNoiseDefense:
    """Wraps a crossbar target and randomises its observable power draw.

    Parameters
    ----------
    target:
        A :class:`~repro.crossbar.tile.CrossbarTile` or
        :class:`~repro.crossbar.accelerator.CrossbarAccelerator`.
    dummy_current_scale:
        Mean of the random dummy current added per inference, expressed as a
        fraction of the target's typical total current (estimated lazily from
        the first measurements).  ``0.5`` adds on average 50% extra draw.
    jitter:
        Multiplicative jitter applied to the *real* current (models random
        read duty-cycling); ``0.1`` = ±10% uniform.
    random_state:
        Seed for the defence's randomness.
    """

    def __init__(
        self,
        target,
        *,
        dummy_current_scale: float = 0.5,
        jitter: float = 0.1,
        random_state: RandomState = None,
    ):
        self.target = target
        self.dummy_current_scale = check_non_negative(
            dummy_current_scale, "dummy_current_scale"
        )
        self.jitter = check_non_negative(jitter, "jitter")
        self._rng = as_rng(random_state)
        self._reference_current: Optional[float] = None

    # ------------------------------------------------------- passthrough API

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Functional outputs are unaffected by the defence."""
        return self.target.forward(inputs)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Labels are unaffected by the defence."""
        return self.target.predict_labels(inputs)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # --------------------------------------------------------- power channel

    def _update_reference(self, currents: np.ndarray) -> float:
        observed = float(np.mean(np.abs(currents))) if np.size(currents) else 0.0
        if self._reference_current is None:
            self._reference_current = observed if observed > 0 else 1.0
        return self._reference_current

    def total_current(self, inputs: np.ndarray) -> np.ndarray:
        """The defended power observable: jittered real current + dummy draw."""
        inputs = np.asarray(inputs, dtype=float)
        single = inputs.ndim == 1
        real = np.atleast_1d(np.asarray(self.target.total_current(inputs), dtype=float))
        reference = self._update_reference(real)

        defended = real.copy()
        if self.jitter > 0:
            defended = defended * (
                1.0 + self._rng.uniform(-self.jitter, self.jitter, size=defended.shape)
            )
        if self.dummy_current_scale > 0:
            dummy = self._rng.exponential(
                self.dummy_current_scale * reference, size=defended.shape
            )
            defended = defended + dummy
        return float(defended[0]) if single else defended

    @property
    def overhead_factor(self) -> float:
        """Expected relative increase in average power caused by the defence."""
        return 1.0 + self.dummy_current_scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerNoiseDefense(dummy_current_scale={self.dummy_current_scale}, "
            f"jitter={self.jitter})"
        )
