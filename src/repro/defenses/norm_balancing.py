"""Training-time defence: equalise the weight-column 1-norms.

The power side channel reveals ``G_j ∝ Σ_i |w_ij|``.  If every column of the
weight matrix has (approximately) the same 1-norm, the attacker learns nothing
useful from probing.  Two mechanisms are provided:

* :class:`ColumnNormRegularizer` — a penalty ``β · Var_j(Σ_i |w_ij|)`` whose
  gradient can be added during training, steering the model towards uniform
  column norms while it learns.
* :func:`rebalance_column_norms` — a post-training projection that rescales
  each column towards the mean norm, trading accuracy for leak suppression
  without retraining.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.network import Sequential, SingleLayerNetwork
from repro.utils.validation import check_in_range, check_matrix, check_non_negative


class ColumnNormRegularizer:
    """Penalty on the variance of the weight-column 1-norms.

    The penalty is ``strength * mean_j (n_j - mean(n))^2`` with
    ``n_j = Σ_i |w_ij|``.  Its gradient with respect to ``w_ij`` is
    ``strength * 2 (n_j - mean(n)) (1 - 1/N) sign(w_ij) / N`` (the ``1/N``
    cross terms are kept for exactness).

    Parameters
    ----------
    strength:
        The β weighting of the penalty; 0 disables it.
    """

    def __init__(self, strength: float = 0.1):
        self.strength = check_non_negative(strength, "strength")

    def penalty(self, weights: np.ndarray) -> float:
        """The scalar penalty value for a weight matrix ``(M, N)``."""
        weights = check_matrix(weights, "weights")
        norms = np.abs(weights).sum(axis=0)
        return float(self.strength * np.mean((norms - norms.mean()) ** 2))

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`penalty` with respect to the weights."""
        weights = check_matrix(weights, "weights")
        if self.strength == 0:
            return np.zeros_like(weights)
        norms = np.abs(weights).sum(axis=0)
        n_columns = weights.shape[1]
        centred = norms - norms.mean()
        # d/dw_ij mean_k (n_k - mean)^2
        #   = (2/N) [ (n_j - mean) - mean_k (n_k - mean) ] sign(w_ij)
        # and mean_k (n_k - mean) = 0, so only the direct term survives.
        column_grad = (2.0 / n_columns) * centred
        return self.strength * np.sign(weights) * column_grad[np.newaxis, :]

    def apply_to_training_gradient(
        self, weights: np.ndarray, gradient: np.ndarray
    ) -> np.ndarray:
        """Return ``gradient + d(penalty)/d(weights)`` for use inside a trainer."""
        gradient = np.asarray(gradient, dtype=float)
        return gradient + self.gradient(weights)

    def leakage_variance(self, weights: np.ndarray) -> float:
        """Normalised variance of the column 1-norms (0 = perfectly uniform)."""
        weights = check_matrix(weights, "weights")
        norms = np.abs(weights).sum(axis=0)
        mean = norms.mean()
        if mean == 0:
            return 0.0
        return float(norms.var() / mean**2)


def rebalance_column_norms(
    network: Sequential,
    *,
    blend: float = 1.0,
    target_norm: Optional[float] = None,
) -> Tuple[Sequential, np.ndarray]:
    """Post-training projection towards uniform column 1-norms.

    Each column of the first layer's weight matrix is rescaled towards the
    target norm: ``w_j <- w_j * (target / n_j) ** blend``.  With ``blend=1``
    every column ends up with exactly the target 1-norm (maximal leak
    suppression, largest accuracy impact); smaller blends interpolate.

    Parameters
    ----------
    network:
        The trained victim; it is modified **in place** (and also returned).
    blend:
        Interpolation factor in ``[0, 1]``.
    target_norm:
        The 1-norm every column is pulled towards; defaults to the mean of the
        current column norms (which keeps the overall conductance budget).

    Returns
    -------
    (network, scale_factors):
        The modified network and the per-column scale factors applied.
    """
    check_in_range(blend, "blend", 0.0, 1.0)
    layer = network.layers[0]
    weights = layer.weights
    norms = np.abs(weights).sum(axis=0)
    if target_norm is None:
        target_norm = float(norms.mean())
    check_non_negative(target_norm, "target_norm")

    safe_norms = np.where(norms > 0, norms, 1.0)
    scale = (target_norm / safe_norms) ** blend
    scale = np.where(norms > 0, scale, 1.0)
    layer.weights = weights * scale[np.newaxis, :]
    return network, scale


def train_with_norm_balancing(
    dataset,
    *,
    output: str = "softmax",
    regularizer: Optional[ColumnNormRegularizer] = None,
    epochs: int = 30,
    learning_rate: float = 0.005,
    batch_size: int = 64,
    random_state=None,
) -> SingleLayerNetwork:
    """Train a single-layer victim with the column-norm penalty folded in.

    This is a defence-aware variant of
    :func:`repro.nn.trainer.train_single_layer`: after every mini-batch the
    regularizer's gradient is applied on top of the task gradient.
    """
    from repro.nn.losses import CategoricalCrossEntropy
    from repro.nn.optimizers import Adam
    from repro.nn.trainer import Trainer
    from repro.utils.rng import as_rng

    regularizer = regularizer if regularizer is not None else ColumnNormRegularizer(0.0)
    rng = as_rng(random_state)
    network = SingleLayerNetwork(
        dataset.n_features, dataset.n_classes, output=output, random_state=rng
    )
    trainer = Trainer(
        network,
        loss=network.default_loss(),
        optimizer=Adam(learning_rate=learning_rate),
        batch_size=batch_size,
        random_state=rng,
    )

    inputs, targets = dataset.train_inputs, dataset.train_targets
    for _ in range(epochs):
        order = rng.permutation(len(inputs))
        for start in range(0, len(inputs), batch_size):
            idx = order[start : start + batch_size]
            outputs = network.forward(inputs[idx], training=True)
            if trainer._use_fused_softmax():
                grad = CategoricalCrossEntropy.fused_softmax_gradient(outputs, targets[idx])
                network.backward(grad, skip_last_activation=True)
            else:
                grad = trainer.loss.gradient(outputs, targets[idx])
                network.backward(grad)
            layer = network.layers[0]
            layer.grad_weights = regularizer.apply_to_training_gradient(
                layer.weights, layer.grad_weights
            )
            trainer.optimizer.step(network)
            network.zero_gradients()
    return network
