"""Quantifying how well a defence closes the power side channel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.evaluation import accuracy_under_attack
from repro.attacks.single_pixel import SinglePixelAttack, SinglePixelStrategy
from repro.nn.gradients import weight_column_norms
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.sidechannel.measurement import PowerMeasurement
from repro.sidechannel.probing import ColumnNormProber
from repro.utils.rng import RandomState, as_rng


def leakage_correlation(
    power_target,
    network: Sequential,
    *,
    noise_std: float = 0.0,
    random_state: RandomState = None,
    leaked_norms: Optional[np.ndarray] = None,
) -> float:
    """Correlation between power-probed column sums and the true 1-norms.

    1.0 means the side channel leaks the weight-column 1-norms perfectly;
    values near 0 mean a successful defence.  Degenerate observations —
    zero-variance leaked sums (e.g. a fully quantised or jammed channel),
    constant-weight victims, or non-finite readings — report 0.0 rather
    than a NaN correlation.

    Parameters
    ----------
    leaked_norms:
        Optional pre-probed column sums.  When given, ``power_target`` is not
        probed again — the caller's own acquisition (a scenario-configured
        prober, a replayed trace) is scored as-is, so the leakage metric and
        any attack mounted from the same probe see identical data.
    """
    if leaked_norms is None:
        n_features = network.layers[0].n_inputs
        prober = ColumnNormProber(
            PowerMeasurement(
                power_target, noise_std=noise_std, random_state=random_state
            ),
            n_features,
        )
        leaked = prober.probe_all().column_sums
    else:
        leaked = np.asarray(leaked_norms, dtype=float)
    true_norms = weight_column_norms(network.layers[0].weights)
    if leaked.std() == 0 or true_norms.std() == 0:
        return 0.0
    correlation = float(np.corrcoef(leaked, true_norms)[0, 1])
    if not np.isfinite(correlation):
        return 0.0
    return correlation


def single_pixel_attack_advantage(
    victim: Sequential,
    leaked_norms: np.ndarray,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    strength: float = 8.0,
    random_state: RandomState = None,
) -> float:
    """Accuracy drop of the power-guided attack relative to the random baseline.

    Positive values mean the leaked information still gives the attacker an
    edge; ~0 means the defence removed the advantage.
    """
    rng = as_rng(random_state)
    power_attack = SinglePixelAttack(
        SinglePixelStrategy.POWER_ADD, column_norms=leaked_norms, random_state=rng
    )
    random_attack = SinglePixelAttack(SinglePixelStrategy.RANDOM_PIXEL, random_state=rng)
    power_acc = accuracy_under_attack(victim, power_attack, inputs, targets, strength)
    random_acc = accuracy_under_attack(victim, random_attack, inputs, targets, strength)
    return float(random_acc - power_acc)


@dataclass(frozen=True)
class DefenseReport:
    """Outcome of evaluating one defence configuration.

    Attributes
    ----------
    name:
        Defence label.
    clean_accuracy:
        Victim accuracy with the defence in place (training-time defences may
        cost accuracy; inference-time defences do not).
    leakage:
        Correlation between probed power and true column 1-norms.
    attack_advantage:
        Accuracy advantage of the power-guided single-pixel attack over the
        random baseline, measured against the defended power observable.
    power_overhead:
        Relative increase in average power caused by the defence (1.0 = none).
    """

    name: str
    clean_accuracy: float
    leakage: float
    attack_advantage: float
    power_overhead: float = 1.0


def evaluate_defense(
    name: str,
    victim: Sequential,
    power_target,
    test_inputs: np.ndarray,
    test_targets: np.ndarray,
    *,
    attack_strength: float = 8.0,
    probe_noise_std: float = 0.0,
    power_overhead: float = 1.0,
    random_state: RandomState = None,
) -> DefenseReport:
    """Evaluate a (victim, power observable) pair against the power-only attacker.

    Parameters
    ----------
    victim:
        The network whose predictions the attacker is trying to flip.
    power_target:
        The object the attacker probes (possibly wrapped in a defence such as
        :class:`~repro.defenses.noise_injection.PowerNoiseDefense`).
    """
    rng = as_rng(random_state)
    clean_accuracy = accuracy(victim.predict(test_inputs), test_targets)
    leakage = leakage_correlation(
        power_target, victim, noise_std=probe_noise_std, random_state=rng
    )
    n_features = victim.layers[0].n_inputs
    prober = ColumnNormProber(
        PowerMeasurement(power_target, noise_std=probe_noise_std, random_state=rng),
        n_features,
    )
    leaked = prober.probe_all().column_sums
    advantage = single_pixel_attack_advantage(
        victim, leaked, test_inputs, test_targets, strength=attack_strength, random_state=rng
    )
    return DefenseReport(
        name=name,
        clean_accuracy=clean_accuracy,
        leakage=leakage,
        attack_advantage=advantage,
        power_overhead=power_overhead,
    )
