"""Countermeasures against the power side channel.

The paper demonstrates the attack; this package implements the natural
defences implied by its analysis so their cost/benefit can be studied:

* :class:`~repro.defenses.norm_balancing.ColumnNormRegularizer` — train the
  victim so its weight-column 1-norms are (near-)uniform, removing the signal
  the side channel carries at the cost of some accuracy.
* :class:`~repro.defenses.noise_injection.PowerNoiseDefense` — add randomised
  dummy current draw at inference time so power measurements no longer reflect
  the true column sums.
* The balanced conductance mapping
  (:class:`repro.crossbar.mapping.MappingScheme.BALANCED`) is the hardware-level
  defence and lives in the crossbar package.
* :mod:`repro.defenses.evaluation` — leakage and attack-advantage metrics used
  to quantify how well a defence works.
"""

from repro.defenses.norm_balancing import ColumnNormRegularizer, rebalance_column_norms
from repro.defenses.noise_injection import PowerNoiseDefense
from repro.defenses.evaluation import (
    leakage_correlation,
    single_pixel_attack_advantage,
    DefenseReport,
    evaluate_defense,
)

__all__ = [
    "ColumnNormRegularizer",
    "rebalance_column_norms",
    "PowerNoiseDefense",
    "leakage_correlation",
    "single_pixel_attack_advantage",
    "DefenseReport",
    "evaluate_defense",
]
