"""Synthetic datasets standing in for MNIST and CIFAR-10.

The evaluation environment has no network access, so the paper's datasets are
replaced by generative synthetic equivalents that preserve the statistics the
experiments depend on (see DESIGN.md section 2 for the substitution argument):

* :func:`load_mnist_like` — smooth, centre-concentrated digit-style images,
  easily separable by a single-layer network (≈90% test accuracy).
* :func:`load_cifar_like` — high-frequency textured colour images with heavy
  intra-class variation, poorly separable by a single-layer network
  (≈30–40% test accuracy).
"""

from repro.datasets.base import Dataset, train_test_split
from repro.datasets.transforms import (
    one_hot,
    from_one_hot,
    normalize_minmax,
    normalize_standard,
    flatten_images,
    unflatten_images,
    clip_to_range,
)
from repro.datasets.synthetic_digits import SyntheticDigitsGenerator, load_mnist_like
from repro.datasets.synthetic_objects import SyntheticObjectsGenerator, load_cifar_like
from repro.datasets.loaders import load_dataset, available_datasets, canonical_dataset_name

__all__ = [
    "Dataset",
    "train_test_split",
    "one_hot",
    "from_one_hot",
    "normalize_minmax",
    "normalize_standard",
    "flatten_images",
    "unflatten_images",
    "clip_to_range",
    "SyntheticDigitsGenerator",
    "load_mnist_like",
    "SyntheticObjectsGenerator",
    "load_cifar_like",
    "load_dataset",
    "available_datasets",
    "canonical_dataset_name",
]
