"""Dataset registry and generic loader."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.base import Dataset
from repro.datasets.synthetic_digits import load_mnist_like
from repro.datasets.synthetic_objects import load_cifar_like
from repro.utils.rng import RandomState

_LOADERS: Dict[str, Callable[..., Dataset]] = {
    "mnist-like": load_mnist_like,
    "mnist": load_mnist_like,
    "cifar-like": load_cifar_like,
    "cifar10": load_cifar_like,
    "cifar-10": load_cifar_like,
}

#: Aliases mapped to the canonical dataset name used in results/metadata.
_CANONICAL: Dict[str, str] = {
    "mnist": "mnist-like",
    "cifar10": "cifar-like",
    "cifar-10": "cifar-like",
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(set(_LOADERS))


def canonical_dataset_name(name: str) -> str:
    """Resolve a dataset name or alias to its canonical form.

    ``"mnist"`` / ``"mnist-like"`` -> ``"mnist-like"``; unknown names raise
    :class:`KeyError` with the list of accepted names.
    """
    key = str(name).lower()
    key = _CANONICAL.get(key, key)
    if key not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return key


def load_dataset(
    name: str,
    n_train: int = 2000,
    n_test: int = 500,
    *,
    random_state: RandomState = 0,
    **kwargs,
) -> Dataset:
    """Load a dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case insensitive).  The ``mnist``
        and ``cifar10`` aliases map to the synthetic stand-ins documented in
        DESIGN.md.
    n_train / n_test:
        Split sizes.
    random_state:
        Seed controlling both the class prototypes and the samples.
    kwargs:
        Forwarded to the underlying loader (e.g. ``image_size``).
    """
    key = str(name).lower()
    if key not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _LOADERS[key](n_train, n_test, random_state=random_state, **kwargs)
