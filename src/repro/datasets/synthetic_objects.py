"""CIFAR-10-like synthetic dataset.

The real CIFAR-10 dataset is unavailable offline, so this module generates a
textured colour-image replacement that preserves the statistics the paper's
CIFAR-10 experiments depend on:

1. A single-layer network reaches only modest accuracy (the classes overlap
   heavily and are far from linearly separable) — the paper reports ~30-40%
   for CIFAR-10 with a single layer.
2. The informative pixels are *not* spatially concentrated: class information
   lives in high-frequency texture, so the weight-column 1-norm map varies
   rapidly across the image plane (Section III contrasts this with MNIST when
   discussing search difficulty).

Each class is a mixture of oriented sinusoidal gratings with class-specific
frequencies plus a class-tinted colour cast; samples add random phase shifts,
random secondary textures and strong pixel noise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.transforms import flatten_images, one_hot
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int


class SyntheticObjectsGenerator:
    """Generates CIFAR-like ``image_size x image_size x 3`` textured images.

    Parameters
    ----------
    image_size:
        Side length (default 32, as in CIFAR-10).
    n_classes:
        Number of classes (default 10).
    n_gratings:
        Number of sinusoidal gratings mixed into each class texture.
    texture_strength:
        Amplitude of the class texture relative to the noise floor.  Smaller
        values make the task harder.
    noise_level:
        Standard deviation of the additive pixel noise.
    phase_jitter:
        Half-width (radians) of the uniform per-sample phase jitter applied to
        each class grating.  Larger jitter washes out the class template a
        linear model can exploit; the default is tuned so a single-layer
        network reaches roughly CIFAR-10-like accuracy (30-40%).
    random_state:
        Seed controlling the class texture definitions.
    """

    def __init__(
        self,
        *,
        image_size: int = 32,
        n_classes: int = 10,
        n_gratings: int = 3,
        texture_strength: float = 0.35,
        noise_level: float = 0.25,
        phase_jitter: float = 2.7,
        random_state: RandomState = 0,
    ):
        self.image_size = check_positive_int(image_size, "image_size")
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.n_gratings = check_positive_int(n_gratings, "n_gratings")
        if texture_strength <= 0:
            raise ValueError(f"texture_strength must be > 0, got {texture_strength}")
        if noise_level < 0:
            raise ValueError(f"noise_level must be >= 0, got {noise_level}")
        if phase_jitter < 0:
            raise ValueError(f"phase_jitter must be >= 0, got {phase_jitter}")
        self.texture_strength = float(texture_strength)
        self.noise_level = float(noise_level)
        self.phase_jitter = float(phase_jitter)
        rng = as_rng(random_state)
        self._grating_params = self._build_grating_params(rng)

    # ----------------------------------------------------------- prototypes

    def _build_grating_params(self, rng: np.random.Generator) -> np.ndarray:
        """Per class and grating: (frequency_x, frequency_y, phase, channel weight x3)."""
        params = np.empty((self.n_classes, self.n_gratings, 6), dtype=float)
        for cls in range(self.n_classes):
            for g in range(self.n_gratings):
                # moderately high spatial frequencies -> rapidly varying maps
                params[cls, g, 0] = rng.uniform(2.0, 8.0)
                params[cls, g, 1] = rng.uniform(2.0, 8.0)
                params[cls, g, 2] = rng.uniform(0.0, 2 * np.pi)
                params[cls, g, 3:6] = rng.dirichlet(np.ones(3))
        return params

    def class_texture(self, cls: int, phase_jitter: np.ndarray) -> np.ndarray:
        """The deterministic texture for class ``cls`` with per-grating phase jitter."""
        if not 0 <= cls < self.n_classes:
            raise ValueError(f"class index {cls} out of range [0, {self.n_classes})")
        size = self.image_size
        yy, xx = np.mgrid[0:size, 0:size] / size
        texture = np.zeros((size, size, 3), dtype=float)
        for g in range(self.n_gratings):
            fx, fy, phase, *weights = self._grating_params[cls, g]
            wave = np.sin(2 * np.pi * (fx * xx + fy * yy) + phase + phase_jitter[g])
            for channel, weight in enumerate(weights):
                texture[:, :, channel] += weight * wave
        return texture

    # ------------------------------------------------------------- sampling

    def sample_class(
        self, cls: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` images of class ``cls`` as ``(B, H, W, 3)``."""
        if not 0 <= cls < self.n_classes:
            raise ValueError(f"class index {cls} out of range [0, {self.n_classes})")
        size = self.image_size
        images = np.empty((n_samples, size, size, 3), dtype=float)
        for i in range(n_samples):
            phase_jitter = rng.uniform(
                -self.phase_jitter, self.phase_jitter, size=self.n_gratings
            )
            texture = self.class_texture(cls, phase_jitter)
            # The background tint is drawn per *sample*, not per class, so the
            # mean colour carries no class information and the task stays hard
            # for a single linear layer (matching CIFAR-10's low single-layer
            # accuracy).  A distractor texture from a random other class
            # further dilutes separability.
            tint = rng.uniform(0.35, 0.65, size=3)
            distractor_cls = int(rng.integers(self.n_classes))
            distractor = self.class_texture(
                distractor_cls, rng.uniform(0, 2 * np.pi, size=self.n_gratings)
            )
            image = (
                tint[np.newaxis, np.newaxis, :]
                + self.texture_strength * texture
                + 0.4 * self.texture_strength * distractor
                + rng.normal(0.0, self.noise_level, size=(size, size, 3))
            )
            images[i] = np.clip(image, 0.0, 1.0)
        return images

    def generate(
        self,
        n_train: int,
        n_test: int,
        *,
        random_state: RandomState = None,
    ) -> Dataset:
        """Generate a full train/test :class:`Dataset` with balanced classes."""
        check_positive_int(n_train, "n_train")
        check_positive_int(n_test, "n_test")
        rng = as_rng(random_state)
        train_images, train_labels = self._generate_split(n_train, rng)
        test_images, test_labels = self._generate_split(n_test, rng)
        return Dataset(
            name="cifar-like",
            train_inputs=flatten_images(train_images),
            train_targets=one_hot(train_labels, self.n_classes),
            test_inputs=flatten_images(test_images),
            test_targets=one_hot(test_labels, self.n_classes),
            image_shape=(self.image_size, self.image_size, 3),
            feature_range=(0.0, 1.0),
            metadata={
                "generator": "SyntheticObjectsGenerator",
                "image_size": self.image_size,
                "n_classes": self.n_classes,
            },
        )

    def _generate_split(
        self, n_samples: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        per_class = np.full(self.n_classes, n_samples // self.n_classes, dtype=int)
        per_class[: n_samples % self.n_classes] += 1
        images, labels = [], []
        for cls, count in enumerate(per_class):
            if count == 0:
                continue
            images.append(self.sample_class(cls, count, rng))
            labels.append(np.full(count, cls, dtype=int))
        images = np.concatenate(images, axis=0)
        labels = np.concatenate(labels, axis=0)
        order = rng.permutation(len(images))
        return images[order], labels[order]


def load_cifar_like(
    n_train: int = 5000,
    n_test: int = 1000,
    *,
    image_size: int = 32,
    n_classes: int = 10,
    random_state: RandomState = 0,
) -> Dataset:
    """Convenience loader for the CIFAR-like dataset (scaled-down defaults)."""
    rng = as_rng(random_state)
    generator = SyntheticObjectsGenerator(
        image_size=image_size, n_classes=n_classes, random_state=rng
    )
    return generator.generate(n_train, n_test, random_state=rng)
