"""Dataset container with train/test splits, batching and image metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.datasets.transforms import from_one_hot, one_hot, unflatten_images
from repro.utils.rng import RandomState, as_rng


@dataclass
class Dataset:
    """A supervised dataset with flattened inputs and one-hot targets.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"mnist-like"``.
    train_inputs / test_inputs:
        Arrays of shape ``(B, N)`` with features in ``[feature_range]``.
    train_targets / test_targets:
        One-hot arrays of shape ``(B, n_classes)``.
    image_shape:
        Per-sample image shape (e.g. ``(28, 28)`` or ``(32, 32, 3)``) used by
        visualisation and per-channel analyses; ``None`` for non-image data.
    feature_range:
        The valid input range, used by attacks as a box constraint.
    """

    name: str
    train_inputs: np.ndarray
    train_targets: np.ndarray
    test_inputs: np.ndarray
    test_targets: np.ndarray
    image_shape: Optional[Tuple[int, ...]] = None
    feature_range: Tuple[float, float] = (0.0, 1.0)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.train_inputs = np.atleast_2d(np.asarray(self.train_inputs, dtype=float))
        self.test_inputs = np.atleast_2d(np.asarray(self.test_inputs, dtype=float))
        self.train_targets = np.atleast_2d(np.asarray(self.train_targets, dtype=float))
        self.test_targets = np.atleast_2d(np.asarray(self.test_targets, dtype=float))
        if len(self.train_inputs) != len(self.train_targets):
            raise ValueError("train inputs and targets disagree on sample count")
        if len(self.test_inputs) != len(self.test_targets):
            raise ValueError("test inputs and targets disagree on sample count")
        if self.train_inputs.shape[1] != self.test_inputs.shape[1]:
            raise ValueError("train and test inputs disagree on feature count")
        if self.train_targets.shape[1] != self.test_targets.shape[1]:
            raise ValueError("train and test targets disagree on class count")
        if self.image_shape is not None:
            expected = int(np.prod(self.image_shape))
            if expected != self.n_features:
                raise ValueError(
                    f"image_shape {self.image_shape} does not match "
                    f"{self.n_features} features"
                )

    # ------------------------------------------------------------ properties

    @property
    def n_features(self) -> int:
        """Input dimensionality N."""
        return self.train_inputs.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of classes M."""
        return self.train_targets.shape[1]

    @property
    def n_train(self) -> int:
        """Number of training samples."""
        return len(self.train_inputs)

    @property
    def n_test(self) -> int:
        """Number of test samples."""
        return len(self.test_inputs)

    @property
    def train_labels(self) -> np.ndarray:
        """Integer training labels."""
        return from_one_hot(self.train_targets)

    @property
    def test_labels(self) -> np.ndarray:
        """Integer test labels."""
        return from_one_hot(self.test_targets)

    # -------------------------------------------------------------- methods

    def train_images(self) -> np.ndarray:
        """Training inputs reshaped to images (requires ``image_shape``)."""
        if self.image_shape is None:
            raise ValueError("dataset has no image_shape")
        return unflatten_images(self.train_inputs, self.image_shape)

    def test_images(self) -> np.ndarray:
        """Test inputs reshaped to images (requires ``image_shape``)."""
        if self.image_shape is None:
            raise ValueError("dataset has no image_shape")
        return unflatten_images(self.test_inputs, self.image_shape)

    def batches(
        self,
        batch_size: int,
        *,
        split: str = "train",
        shuffle: bool = False,
        random_state: RandomState = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (inputs, targets) mini-batches from one split."""
        if split == "train":
            inputs, targets = self.train_inputs, self.train_targets
        elif split == "test":
            inputs, targets = self.test_inputs, self.test_targets
        else:
            raise ValueError(f"split must be 'train' or 'test', got {split!r}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        order = np.arange(len(inputs))
        if shuffle:
            order = as_rng(random_state).permutation(order)
        for start in range(0, len(inputs), batch_size):
            idx = order[start : start + batch_size]
            yield inputs[idx], targets[idx]

    def subset(
        self,
        n_train: Optional[int] = None,
        n_test: Optional[int] = None,
        *,
        random_state: RandomState = None,
    ) -> "Dataset":
        """Return a random subset (used for scaled-down benchmark runs)."""
        rng = as_rng(random_state)
        train_idx = np.arange(self.n_train)
        test_idx = np.arange(self.n_test)
        if n_train is not None:
            if n_train > self.n_train:
                raise ValueError(
                    f"requested {n_train} training samples but only {self.n_train} exist"
                )
            train_idx = rng.choice(self.n_train, size=n_train, replace=False)
        if n_test is not None:
            if n_test > self.n_test:
                raise ValueError(
                    f"requested {n_test} test samples but only {self.n_test} exist"
                )
            test_idx = rng.choice(self.n_test, size=n_test, replace=False)
        return Dataset(
            name=self.name,
            train_inputs=self.train_inputs[train_idx],
            train_targets=self.train_targets[train_idx],
            test_inputs=self.test_inputs[test_idx],
            test_targets=self.test_targets[test_idx],
            image_shape=self.image_shape,
            feature_range=self.feature_range,
            metadata=dict(self.metadata),
        )

    def query_pool(self, n_queries: int, *, random_state: RandomState = None) -> np.ndarray:
        """Sample ``n_queries`` training inputs to use as oracle queries.

        The paper's surrogate attack queries the oracle with inputs drawn from
        the training set.  If more queries than training samples are requested
        the full training set is returned.
        """
        if n_queries >= self.n_train:
            return self.train_inputs.copy()
        rng = as_rng(random_state)
        idx = rng.choice(self.n_train, size=n_queries, replace=False)
        return self.train_inputs[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n_train={self.n_train}, n_test={self.n_test}, "
            f"n_features={self.n_features}, n_classes={self.n_classes})"
        )


def train_test_split(
    inputs: np.ndarray,
    labels: np.ndarray,
    *,
    test_fraction: float = 0.2,
    n_classes: Optional[int] = None,
    name: str = "dataset",
    image_shape: Optional[Tuple[int, ...]] = None,
    feature_range: Tuple[float, float] = (0.0, 1.0),
    random_state: RandomState = None,
) -> Dataset:
    """Split raw (inputs, integer labels) into a :class:`Dataset`."""
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    labels = np.asarray(labels, dtype=int)
    if len(inputs) != len(labels):
        raise ValueError("inputs and labels disagree on sample count")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(random_state)
    order = rng.permutation(len(inputs))
    n_test = max(1, int(round(test_fraction * len(inputs))))
    test_idx, train_idx = order[:n_test], order[n_test:]
    targets = one_hot(labels, n_classes)
    return Dataset(
        name=name,
        train_inputs=inputs[train_idx],
        train_targets=targets[train_idx],
        test_inputs=inputs[test_idx],
        test_targets=targets[test_idx],
        image_shape=image_shape,
        feature_range=feature_range,
    )
