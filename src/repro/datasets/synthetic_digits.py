"""MNIST-like synthetic dataset.

The real MNIST dataset cannot be downloaded in the offline evaluation
environment, so this module generates a drop-in replacement that preserves the
two properties the paper's experiments rely on:

1. A single-layer network reaches high test accuracy (the digits are
   near-linearly separable).
2. The informative pixels are concentrated in the centre of the image and
   vary smoothly across the image plane, which makes the weight-column 1-norm
   map spatially smooth (Section III of the paper uses this smoothness when
   discussing query-efficient search for the most sensitive pixel).

Each class is defined by a fixed "stroke prototype": a small set of control
points near the image centre connected by Gaussian-brushed line segments and
smoothed with a Gaussian filter.  Individual samples are produced by randomly
translating, scaling and re-noising the prototype.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.ndimage import gaussian_filter, shift as ndi_shift

from repro.datasets.base import Dataset
from repro.datasets.transforms import flatten_images, one_hot
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int


class SyntheticDigitsGenerator:
    """Generates MNIST-like 28x28 grayscale images for ``n_classes`` classes.

    Parameters
    ----------
    image_size:
        Side length of the square images (default 28, as in MNIST).
    n_classes:
        Number of digit classes (default 10).
    n_strokes:
        Number of line segments composing each class prototype.
    brush_sigma:
        Gaussian brush width used when rasterising strokes.
    deformation:
        Standard deviation (in pixels) of the per-sample random translation.
    noise_level:
        Standard deviation of additive pixel noise.
    random_state:
        Seed controlling the class prototypes.  Two generators built with the
        same seed produce identical prototypes, so train and test samples are
        drawn from the same class-conditional distribution.
    """

    def __init__(
        self,
        *,
        image_size: int = 28,
        n_classes: int = 10,
        n_strokes: int = 4,
        brush_sigma: float = 1.1,
        deformation: float = 1.0,
        noise_level: float = 0.10,
        random_state: RandomState = 0,
    ):
        self.image_size = check_positive_int(image_size, "image_size")
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.n_strokes = check_positive_int(n_strokes, "n_strokes")
        if brush_sigma <= 0:
            raise ValueError(f"brush_sigma must be > 0, got {brush_sigma}")
        if deformation < 0:
            raise ValueError(f"deformation must be >= 0, got {deformation}")
        if noise_level < 0:
            raise ValueError(f"noise_level must be >= 0, got {noise_level}")
        self.brush_sigma = float(brush_sigma)
        self.deformation = float(deformation)
        self.noise_level = float(noise_level)
        self._prototype_rng = as_rng(random_state)
        self.prototypes = self._build_prototypes()

    # ---------------------------------------------------------- prototypes

    def _stroke_image(self, points: np.ndarray) -> np.ndarray:
        """Rasterise a poly-line through ``points`` with a Gaussian brush."""
        size = self.image_size
        canvas = np.zeros((size, size), dtype=float)
        yy, xx = np.mgrid[0:size, 0:size]
        for start, end in zip(points[:-1], points[1:]):
            # sample points densely along the segment and stamp the brush
            n_steps = max(2, int(np.hypot(*(end - start)) * 3))
            for t in np.linspace(0.0, 1.0, n_steps):
                cy, cx = (1 - t) * start + t * end
                canvas += np.exp(
                    -((yy - cy) ** 2 + (xx - cx) ** 2) / (2.0 * self.brush_sigma**2)
                )
        canvas = gaussian_filter(canvas, sigma=0.8)
        peak = canvas.max()
        if peak > 0:
            canvas /= peak
        return canvas

    def _build_prototypes(self) -> np.ndarray:
        """Create one smooth stroke prototype per class, centred in the image."""
        size = self.image_size
        centre = size / 2.0
        spread = size / 4.5
        prototypes = np.zeros((self.n_classes, size, size), dtype=float)
        for cls in range(self.n_classes):
            n_points = self.n_strokes + 1
            angles = np.sort(self._prototype_rng.uniform(0, 2 * np.pi, size=n_points))
            radii = self._prototype_rng.uniform(0.25 * spread, spread, size=n_points)
            points = np.stack(
                [
                    centre + radii * np.sin(angles),
                    centre + radii * np.cos(angles),
                ],
                axis=1,
            )
            prototypes[cls] = self._stroke_image(points)
        return prototypes

    # ------------------------------------------------------------- sampling

    def sample_class(
        self, cls: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` images of class ``cls`` as a ``(B, H, W)`` array."""
        if not 0 <= cls < self.n_classes:
            raise ValueError(f"class index {cls} out of range [0, {self.n_classes})")
        prototype = self.prototypes[cls]
        images = np.empty((n_samples, self.image_size, self.image_size), dtype=float)
        for i in range(n_samples):
            offsets = rng.normal(0.0, self.deformation, size=2)
            image = ndi_shift(prototype, offsets, order=1, mode="constant", cval=0.0)
            brightness = rng.uniform(0.8, 1.2)
            image = brightness * image
            image = image + rng.normal(0.0, self.noise_level, size=image.shape)
            images[i] = np.clip(image, 0.0, 1.0)
        return images

    def generate(
        self,
        n_train: int,
        n_test: int,
        *,
        random_state: RandomState = None,
    ) -> Dataset:
        """Generate a full train/test :class:`Dataset`.

        Samples are balanced across classes (up to rounding).
        """
        check_positive_int(n_train, "n_train")
        check_positive_int(n_test, "n_test")
        rng = as_rng(random_state)
        train_images, train_labels = self._generate_split(n_train, rng)
        test_images, test_labels = self._generate_split(n_test, rng)
        return Dataset(
            name="mnist-like",
            train_inputs=flatten_images(train_images),
            train_targets=one_hot(train_labels, self.n_classes),
            test_inputs=flatten_images(test_images),
            test_targets=one_hot(test_labels, self.n_classes),
            image_shape=(self.image_size, self.image_size),
            feature_range=(0.0, 1.0),
            metadata={
                "generator": "SyntheticDigitsGenerator",
                "image_size": self.image_size,
                "n_classes": self.n_classes,
            },
        )

    def _generate_split(
        self, n_samples: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        per_class = np.full(self.n_classes, n_samples // self.n_classes, dtype=int)
        per_class[: n_samples % self.n_classes] += 1
        images, labels = [], []
        for cls, count in enumerate(per_class):
            if count == 0:
                continue
            images.append(self.sample_class(cls, count, rng))
            labels.append(np.full(count, cls, dtype=int))
        images = np.concatenate(images, axis=0)
        labels = np.concatenate(labels, axis=0)
        order = rng.permutation(len(images))
        return images[order], labels[order]


def load_mnist_like(
    n_train: int = 6000,
    n_test: int = 1000,
    *,
    image_size: int = 28,
    n_classes: int = 10,
    random_state: RandomState = 0,
) -> Dataset:
    """Convenience loader for the MNIST-like dataset.

    The default sizes are a 10x scaled-down version of MNIST; the experiment
    modules pass larger values when running at paper scale.
    """
    rng = as_rng(random_state)
    generator = SyntheticDigitsGenerator(
        image_size=image_size, n_classes=n_classes, random_state=rng
    )
    return generator.generate(n_train, n_test, random_state=rng)
