"""Dataset transforms: encoding, normalisation and reshaping."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def one_hot(labels: np.ndarray, n_classes: Optional[int] = None) -> np.ndarray:
    """One-hot encode an integer label vector into shape ``(B, n_classes)``."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and labels.min() < 0:
        raise ValueError("labels must be non-negative")
    if n_classes is None:
        n_classes = int(labels.max()) + 1 if labels.size else 0
    elif labels.size and labels.max() >= n_classes:
        raise ValueError(
            f"labels contain class {labels.max()} but n_classes is {n_classes}"
        )
    encoded = np.zeros((labels.shape[0], n_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def from_one_hot(encoded: np.ndarray) -> np.ndarray:
    """Invert :func:`one_hot` (argmax over rows)."""
    encoded = np.asarray(encoded)
    if encoded.ndim != 2:
        raise ValueError(f"encoded labels must be 2-D, got shape {encoded.shape}")
    return np.argmax(encoded, axis=1)


def normalize_minmax(
    data: np.ndarray, low: float = 0.0, high: float = 1.0
) -> np.ndarray:
    """Rescale ``data`` linearly so its global min/max map to ``[low, high]``."""
    data = np.asarray(data, dtype=float)
    dmin, dmax = data.min(), data.max()
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    if np.isclose(dmax, dmin):
        return np.full_like(data, low)
    return low + (data - dmin) * (high - low) / (dmax - dmin)


def normalize_standard(
    data: np.ndarray, epsilon: float = 1e-12
) -> Tuple[np.ndarray, float, float]:
    """Standardise to zero mean / unit variance; returns (data, mean, std)."""
    data = np.asarray(data, dtype=float)
    mean = float(data.mean())
    std = float(data.std())
    return (data - mean) / (std + epsilon), mean, std


def flatten_images(images: np.ndarray) -> np.ndarray:
    """Flatten ``(B, H, W)`` or ``(B, H, W, C)`` images to ``(B, N)``."""
    images = np.asarray(images, dtype=float)
    if images.ndim < 2:
        raise ValueError(f"images must have at least 2 dimensions, got {images.ndim}")
    if images.ndim == 2:
        return images
    return images.reshape(images.shape[0], -1)


def unflatten_images(
    flat: np.ndarray, shape: Tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`flatten_images` given the per-image ``shape``."""
    flat = np.asarray(flat, dtype=float)
    if flat.ndim != 2:
        raise ValueError(f"flat images must be 2-D, got shape {flat.shape}")
    expected = int(np.prod(shape))
    if flat.shape[1] != expected:
        raise ValueError(
            f"cannot reshape {flat.shape[1]} features into image shape {shape}"
        )
    return flat.reshape((flat.shape[0],) + tuple(shape))


def clip_to_range(data: np.ndarray, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Clip data into ``[low, high]`` (pixel box constraint)."""
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return np.clip(np.asarray(data, dtype=float), low, high)
