"""Regenerate every table/figure at bench scale and write the text reports.

Used to produce the measured values recorded in EXPERIMENTS.md:

    python scripts/generate_report.py [output_dir]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import (
    format_figure3,
    format_figure4,
    format_figure5,
    format_table1,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.config import resolve_scale


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    output_dir.mkdir(parents=True, exist_ok=True)

    steps = []

    start = time.time()
    table1 = run_table1("bench")
    steps.append(("table1.txt", format_table1(table1), time.time() - start))

    start = time.time()
    figure3 = run_figure3("bench")
    steps.append(("figure3.txt", format_figure3(figure3), time.time() - start))

    start = time.time()
    figure4 = run_figure4("bench")
    steps.append(("figure4.txt", format_figure4(figure4), time.time() - start))

    start = time.time()
    figure5_mnist = run_figure5(
        "bench", rows=(("mnist-like", "label"), ("mnist-like", "raw"))
    )
    steps.append(("figure5_mnist.txt", format_figure5(figure5_mnist), time.time() - start))

    start = time.time()
    cifar_scale = resolve_scale("bench").with_overrides(
        n_train=1500,
        n_test=300,
        n_runs=2,
        query_counts=(50, 200, 1000),
        power_loss_weights=(0.0, 0.01),
        surrogate_epochs=200,
    )
    figure5_cifar = run_figure5(
        cifar_scale, rows=(("cifar-like", "label"), ("cifar-like", "raw"))
    )
    steps.append(("figure5_cifar.txt", format_figure5(figure5_cifar), time.time() - start))

    for filename, text, elapsed in steps:
        path = output_dir / filename
        path.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {path}  ({elapsed:.1f}s)")


if __name__ == "__main__":
    main()
