#!/usr/bin/env python
"""Run any subset of the registered experiment pipelines (CLI wrapper).

Equivalent to ``python -m repro.experiments``; see that module for options::

    python scripts/run_experiments.py --list
    python scripts/run_experiments.py table1 figure4 --scale smoke --executor process
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
