#!/usr/bin/env python
"""Fail when a recorded benchmark regresses against its gate.

Reads ``BENCH_engine.json`` (written by the ``benchmarks/`` suite) and exits
non-zero when any gate fails::

    python scripts/check_bench_regression.py [--path BENCH_engine.json]
                                             [--tolerance 0.05]
                                             [--json-out report.json]
                                             [--min-speedup 1.0]
                                             [--min-peak-speedup 2.0]
                                             [--min-probing-speedup 1.0]
                                             [--max-sharded-ratio 1.2]
                                             [--min-shard-speedup 0.05]
                                             [--min-service-speedup 2.0]
                                             [--min-net-speedup 1.3]
                                             [--min-backend-ratio 0.95]
                                             [--min-executor-speedup 0.15]
                                             [--max-tenant-overhead 1.5]

``--tolerance`` applies a uniform fractional slack to every threshold
(speedup floors become ``floor * (1 - t)``, ratio ceilings become
``ceiling * (1 + t)``), so CI on noisy shared runners can gate with one knob
instead of tuning per-threshold flags.  ``--json-out`` writes a
machine-readable report (pass/fail, failures, effective thresholds) for CI
artifacts.  Exit codes: 0 = pass, 1 = regression, 2 = missing input.

Gated sections:

* ``engine`` — fused single-pass engine vs the legacy two-pass engine:
  ``--min-speedup`` bounds every individual batch size, ``--min-peak-speedup``
  the best one (the fused-engine acceptance criterion is a >= 2x peak speedup
  on power-exposed queries against an ideal crossbar).
* ``engine.backends`` — per-compute-backend timings (when recorded): a numpy
  entry must be present (the always-available reference) and every recorded
  backend's best
  batch-size ratio vs the pre-backend host kernels must stay above
  ``--min-backend-ratio`` (peak, not per-row: the ratio sits within a few
  percent of 1.0, below per-row timer noise on shared runners).  Backends
  listed as skipped (torch/cupy not installed on the bench machine) never
  fail the gate.
* ``bench_probing`` — the batched prober must not be slower than the
  per-column reference mode (``--min-probing-speedup``).
* ``bench_figure5_mnist`` / ``bench_figure5_cifar`` — must have been recorded
  from a process-pool run with a positive wall time.
* ``bench_experiments`` — the unified registry pipeline: the process-pool
  sweep must be bit-identical to the serial sweep and both wall times must be
  recorded.
* ``bench_sharding`` — multi-tile sharded forward must stay within
  ``--max-sharded-ratio`` (default 1.2x) of the single-tile per-element
  throughput for every recorded geometry.  When a ``process_parallel``
  entry is recorded, its outputs must have been verified bit-identical to
  serial execution and the serial/process wall-time ratio must stay above
  ``--min-shard-speedup`` (default 0.05 — a dispatch-overhead floor like
  the executor gate: every forward call pays pool spawn plus pickling the
  input slices, and serial BLAS already uses all cores, so the gate only
  catches runaway shard-dispatch overhead).
* ``bench_sweeps`` — the scenario-sweep subsystem: the process-pool sweep
  must be bit-identical to the serial sweep, both wall times must be
  recorded, and the recorded leakage curve must be monotonicity-sane
  (leakage rises with acquisition fidelity).
* ``bench_service`` — the async coalescing query service: serviced responses
  must have been verified bit-identical to direct seeded queries, and the
  best throughput at offered concurrency >= 8 must beat the
  one-request-per-call baseline by ``--min-service-speedup`` (default 2.0x).
* ``bench_netservice`` — the networked multi-tenant front-end: wire
  responses must have been verified bit-identical to direct seeded queries,
  and the best offered-load level at >= 8 worker processes must beat the
  one-request-per-connection baseline by ``--min-net-speedup`` (default
  1.3x — a single-core floor; multicore hosts measure far higher).
* ``bench_executor`` — the distributed work-queue executor: queue results
  must have been verified bit-identical to the serial reference, every chunk
  must have executed, and serial/queue wall-time ratio must stay above
  ``--min-executor-speedup`` (default 0.15 — a single-core overhead floor;
  the queue pays worker interpreter spawn + framing on a smoke-scale grid,
  so one core cannot beat serial; the gate only catches runaway overhead).
* ``bench_tenant`` — the tenant-placement policies: partitioned responses
  must have been verified bit-identical to direct seeded queries, no
  partitioned tick may have mixed tenants, per-tenant groups must still
  coalesce (factor > 1), and the partitioned wall time must stay within
  ``--max-tenant-overhead`` (default 1.5x) of the shared placement on the
  two-tenant workload.

Sections other than ``engine`` are only checked when present, so a partial
benchmark run stays usable; ``engine`` is always required.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Default gate thresholds (before tolerance is applied).
DEFAULT_THRESHOLDS = {
    "min_speedup": 1.0,
    "min_peak_speedup": 2.0,
    "min_probing_speedup": 1.0,
    "max_sharded_ratio": 1.2,
    "min_shard_speedup": 0.05,
    "min_service_speedup": 2.0,
    "min_net_speedup": 1.3,
    "min_backend_ratio": 0.95,
    "min_executor_speedup": 0.15,
    "max_tenant_overhead": 1.5,
}


def effective_thresholds(thresholds: dict, tolerance: float) -> dict:
    """Apply the uniform fractional slack to every gate threshold.

    Speedup floors (``min_*``) are relaxed downwards, ratio ceilings
    (``max_*``) upwards.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    effective = {}
    for name, value in thresholds.items():
        if name.startswith("min_"):
            effective[name] = value * (1.0 - tolerance)
        else:
            effective[name] = value * (1.0 + tolerance)
    return effective


def check_results(
    results: dict,
    *,
    tolerance: float = 0.0,
    **overrides,
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass).

    ``overrides`` may replace any :data:`DEFAULT_THRESHOLDS` entry; the
    ``tolerance`` slack is applied on top of the (possibly overridden)
    thresholds.
    """
    unknown = set(overrides) - set(DEFAULT_THRESHOLDS)
    if unknown:
        raise TypeError(f"unknown threshold overrides: {sorted(unknown)}")
    thresholds = effective_thresholds(
        {**DEFAULT_THRESHOLDS, **overrides}, tolerance
    )
    min_speedup = thresholds["min_speedup"]
    min_peak_speedup = thresholds["min_peak_speedup"]
    min_probing_speedup = thresholds["min_probing_speedup"]
    max_sharded_ratio = thresholds["max_sharded_ratio"]
    min_shard_speedup = thresholds["min_shard_speedup"]
    min_service_speedup = thresholds["min_service_speedup"]
    min_net_speedup = thresholds["min_net_speedup"]
    min_backend_ratio = thresholds["min_backend_ratio"]
    min_executor_speedup = thresholds["min_executor_speedup"]
    max_tenant_overhead = thresholds["max_tenant_overhead"]

    failures: list[str] = []
    failures.extend(_check_probing_section(results, min_probing_speedup))
    failures.extend(_check_figure5_sections(results))
    failures.extend(_check_experiments_section(results))
    failures.extend(
        _check_sharding_section(results, max_sharded_ratio, min_shard_speedup)
    )
    failures.extend(_check_sweeps_section(results))
    failures.extend(_check_service_section(results, min_service_speedup))
    failures.extend(_check_netservice_section(results, min_net_speedup))
    failures.extend(_check_executor_section(results, min_executor_speedup))
    failures.extend(_check_tenant_section(results, max_tenant_overhead))
    engine = results.get("engine")
    if engine is None:
        return failures + [
            "no 'engine' section found — run benchmarks/bench_engine.py first"
        ]

    rows = engine.get("oracle_query", [])
    if not rows:
        failures.append("engine section has no oracle_query timings")
    for row in rows:
        if row["speedup"] < min_speedup:
            failures.append(
                f"oracle query batch={row['batch_size']}: fused path is slower "
                f"than legacy (speedup {row['speedup']:.2f} < {min_speedup:.2f})"
            )
    if rows:
        peak = max(row["speedup"] for row in rows)
        if peak < min_peak_speedup:
            failures.append(
                f"peak fused speedup {peak:.2f} is below the required "
                f"{min_peak_speedup:.2f}x"
            )

    probing = engine.get("probing")
    if probing is not None and probing["speedup"] < min_speedup:
        failures.append(
            "batched probing is slower than the per-column reference mode "
            f"(speedup {probing['speedup']:.2f} < {min_speedup:.2f})"
        )

    ops = engine.get("array_ops_per_power_query_batch")
    if ops is not None and ops != 1:
        failures.append(
            f"power-exposed oracle query performed {ops} array traversals "
            "per batch (expected exactly 1)"
        )
    failures.extend(_check_backend_entries(engine, min_backend_ratio))
    return failures


def recorded_backends(results: dict) -> list[str]:
    """Backend names with a recorded per-backend entry (for reports)."""
    engine = results.get("engine") or {}
    payload = engine.get("backends") or {}
    return sorted(
        {
            str(entry.get("backend"))
            for entry in payload.get("entries", [])
            if entry.get("backend")
        }
    )


def _check_backend_entries(engine: dict, min_backend_ratio: float) -> list[str]:
    """Gate the per-compute-backend timings inside the engine section.

    Machines without the optional torch/cupy backends must pass: absent
    entries are tolerated (they appear under ``"skipped"``), only the
    always-available numpy entry is mandatory, and every entry that *was*
    recorded must keep its best batch-size ratio vs the pre-backend host
    kernels above the floor.  An engine section with no ``backends`` key at
    all is a legacy record and — like every other absent section — is not
    checked; fresh ``bench_engine`` runs always write one.
    """
    payload = engine.get("backends")
    if payload is None:
        return []
    failures: list[str] = []
    entries = payload.get("entries", [])
    if not any(entry.get("backend") == "numpy" for entry in entries):
        failures.append(
            "engine backends section has no numpy entry (the always-available "
            "reference backend must be benchmarked)"
        )
    for entry in entries:
        name = entry.get("backend")
        rows = entry.get("rows", [])
        if not rows:
            failures.append(f"backend {name!r} entry recorded no timing rows")
            continue
        peak = max(row.get("speedup_vs_reference", 0.0) for row in rows)
        if peak < min_backend_ratio:
            failures.append(
                f"backend {name!r} ({entry.get('dtype')}) best ratio vs the "
                f"pre-backend kernels is {peak:.2f} "
                f"(gate {min_backend_ratio:.2f})"
            )
    return failures


def _check_probing_section(results: dict, min_probing_speedup: float) -> list[str]:
    """Gate the probing-workload timings recorded by benchmarks/bench_probing.py."""
    probing = results.get("bench_probing")
    if probing is None:
        return []
    failures: list[str] = []
    for key in ("batched_s", "per_column_s", "speedup"):
        if key not in probing:
            failures.append(f"bench_probing is missing the {key!r} timing")
    speedup = probing.get("speedup")
    if speedup is not None and speedup < min_probing_speedup:
        failures.append(
            "probing workload: batched prober is slower than the per-column "
            f"reference mode (speedup {speedup:.2f} < {min_probing_speedup:.2f})"
        )
    return failures


def _check_figure5_sections(results: dict) -> list[str]:
    """Gate the Figure 5 pipeline timings recorded by benchmarks/bench_figure5.py."""
    failures: list[str] = []
    for section in ("bench_figure5_mnist", "bench_figure5_cifar"):
        payload = results.get(section)
        if payload is None:
            continue
        elapsed = payload.get("elapsed_s")
        if not isinstance(elapsed, (int, float)) or elapsed <= 0:
            failures.append(f"{section} has no positive elapsed_s wall time")
        if payload.get("runner_mode") != "process":
            failures.append(
                f"{section} was not recorded from a process-pool run "
                f"(runner_mode={payload.get('runner_mode')!r})"
            )
    return failures


def _check_experiments_section(results: dict) -> list[str]:
    """Gate the unified-registry timings recorded by benchmarks/bench_experiments.py."""
    payload = results.get("bench_experiments")
    if payload is None:
        return []
    failures: list[str] = []
    for key in ("serial_s", "process_s"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(f"bench_experiments has no positive {key!r} wall time")
    if payload.get("results_identical") is not True:
        failures.append(
            "bench_experiments: process-pool results were not bit-identical "
            "to the serial sweep"
        )
    if not payload.get("experiments"):
        failures.append("bench_experiments recorded no experiment names")
    return failures


def _check_sharding_section(
    results: dict, max_sharded_ratio: float, min_shard_speedup: float
) -> list[str]:
    """Gate the multi-tile timings recorded by benchmarks/bench_sharding.py."""
    payload = results.get("bench_sharding")
    if payload is None:
        return []
    failures: list[str] = []
    rows = payload.get("geometries", [])
    if not rows:
        failures.append("bench_sharding recorded no geometries")
    for row in rows:
        for key in ("single_s", "sharded_s"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                failures.append(
                    f"bench_sharding {row.get('geometry')!r} has no positive "
                    f"{key!r} wall time"
                )
        ratio = row.get("ratio")
        if isinstance(ratio, (int, float)) and ratio > max_sharded_ratio:
            failures.append(
                f"sharded forward ({row.get('geometry')!r}) is {ratio:.2f}x the "
                f"single-tile per-element time (gate {max_sharded_ratio:.2f}x)"
            )
    parallel = payload.get("process_parallel")
    if parallel is not None:
        if parallel.get("outputs_identical") is not True:
            failures.append(
                "bench_sharding: process-parallel shard outputs were not "
                "verified bit-identical to serial execution"
            )
        for key in ("serial_s", "process_s"):
            value = parallel.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                failures.append(
                    f"bench_sharding process_parallel has no positive "
                    f"{key!r} wall time"
                )
        speedup = parallel.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < min_shard_speedup:
            failures.append(
                f"process-parallel shard forward retains only {speedup:.2f}x "
                f"of serial throughput (floor {min_shard_speedup:.2f} — "
                "excess shard-dispatch overhead)"
            )
    return failures


def _check_sweeps_section(results: dict) -> list[str]:
    """Gate the scenario-sweep timings recorded by benchmarks/bench_sweeps.py."""
    payload = results.get("bench_sweeps")
    if payload is None:
        return []
    failures: list[str] = []
    for key in ("serial_s", "process_s"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(f"bench_sweeps has no positive {key!r} wall time")
    if payload.get("results_identical") is not True:
        failures.append(
            "bench_sweeps: process-pool results were not bit-identical "
            "to the serial sweep"
        )
    if not payload.get("leakage_curve"):
        failures.append("bench_sweeps recorded no leakage curve")
    if payload.get("monotone_ok") is not True:
        failures.append(
            "bench_sweeps: leakage curve is not monotonicity-sane "
            f"(curve {payload.get('leakage_curve')!r} over "
            f"{payload.get('values')!r})"
        )
    return failures


def _check_service_section(results: dict, min_service_speedup: float) -> list[str]:
    """Gate the coalescing timings recorded by benchmarks/bench_service.py."""
    payload = results.get("bench_service")
    if payload is None:
        return []
    failures: list[str] = []
    if payload.get("responses_identical") is not True:
        failures.append(
            "bench_service: serviced responses were not verified bit-identical "
            "to direct seeded queries"
        )
    direct = payload.get("direct_s")
    if not isinstance(direct, (int, float)) or direct <= 0:
        failures.append("bench_service has no positive 'direct_s' wall time")
    rows = payload.get("concurrency", [])
    if not rows:
        failures.append("bench_service recorded no concurrency rows")
    eligible = [
        row.get("speedup_vs_direct")
        for row in rows
        if isinstance(row.get("concurrency"), int) and row["concurrency"] >= 8
    ]
    eligible = [value for value in eligible if isinstance(value, (int, float))]
    if rows and not eligible:
        failures.append(
            "bench_service recorded no rows at offered concurrency >= 8"
        )
    if eligible and max(eligible) < min_service_speedup:
        failures.append(
            f"coalescing service best speedup {max(eligible):.2f}x at "
            f"concurrency >= 8 is below the required "
            f"{min_service_speedup:.2f}x vs one-request-per-call"
        )
    return failures


def _check_netservice_section(results: dict, min_net_speedup: float) -> list[str]:
    """Gate the networked-service timings recorded by benchmarks/bench_netservice.py."""
    payload = results.get("bench_netservice")
    if payload is None:
        return []
    failures: list[str] = []
    if payload.get("responses_identical") is not True:
        failures.append(
            "bench_netservice: wire responses were not verified bit-identical "
            "to direct seeded queries"
        )
    baseline = payload.get("one_per_connection_s")
    if not isinstance(baseline, (int, float)) or baseline <= 0:
        failures.append(
            "bench_netservice has no positive 'one_per_connection_s' wall time"
        )
    rows = payload.get("offered_load", [])
    if not rows:
        failures.append("bench_netservice recorded no offered-load rows")
    eligible = [
        row.get("speedup_vs_one_per_connection")
        for row in rows
        if isinstance(row.get("workers"), int) and row["workers"] >= 8
    ]
    eligible = [value for value in eligible if isinstance(value, (int, float))]
    if rows and not eligible:
        failures.append(
            "bench_netservice recorded no offered-load rows at >= 8 workers"
        )
    if eligible and max(eligible) < min_net_speedup:
        failures.append(
            f"networked service best speedup {max(eligible):.2f}x at >= 8 "
            f"workers is below the required {min_net_speedup:.2f}x vs "
            "one-request-per-connection"
        )
    return failures


def _check_executor_section(results: dict, min_executor_speedup: float) -> list[str]:
    """Gate the work-queue timings recorded by benchmarks/bench_executor.py."""
    payload = results.get("bench_executor")
    if payload is None:
        return []
    failures: list[str] = []
    if payload.get("results_identical") is not True:
        failures.append(
            "bench_executor: queue-executor results were not verified "
            "bit-identical to the serial reference"
        )
    for key in ("serial_s", "queue_s"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(f"bench_executor has no positive {key!r} wall time")
    stats = payload.get("stats") or {}
    if stats.get("chunks_executed") != stats.get("chunks_total"):
        failures.append(
            "bench_executor: not every chunk executed "
            f"({stats.get('chunks_executed')!r} of {stats.get('chunks_total')!r})"
        )
    workers = payload.get("n_workers")
    if not isinstance(workers, int) or workers < 2:
        failures.append(
            f"bench_executor was not recorded with >= 2 workers (got {workers!r})"
        )
    speedup = payload.get("speedup")
    if isinstance(speedup, (int, float)) and speedup < min_executor_speedup:
        failures.append(
            f"queue executor serial/queue ratio {speedup:.2f} is below the "
            f"required {min_executor_speedup:.2f} (excess coordination overhead)"
        )
    return failures


def _check_tenant_section(results: dict, max_tenant_overhead: float) -> list[str]:
    """Gate the placement timings recorded by benchmarks/bench_tenant.py."""
    payload = results.get("bench_tenant")
    if payload is None:
        return []
    failures: list[str] = []
    if payload.get("responses_identical") is not True:
        failures.append(
            "bench_tenant: partitioned responses were not verified "
            "bit-identical to direct seeded queries"
        )
    rows = {
        row.get("placement"): row for row in payload.get("placements", [])
    }
    for placement in ("shared", "partitioned"):
        row = rows.get(placement)
        if row is None:
            failures.append(f"bench_tenant recorded no {placement!r} placement row")
            continue
        elapsed = row.get("elapsed_s")
        if not isinstance(elapsed, (int, float)) or elapsed <= 0:
            failures.append(
                f"bench_tenant {placement!r} has no positive 'elapsed_s' wall time"
            )
    partitioned = rows.get("partitioned")
    if partitioned is not None:
        if partitioned.get("mixed_ticks") != 0:
            failures.append(
                "bench_tenant: partitioned placement mixed tenants in "
                f"{partitioned.get('mixed_ticks')!r} tick(s) — isolation broke"
            )
        factor = partitioned.get("coalescing_factor")
        if isinstance(factor, (int, float)) and factor <= 1.0:
            failures.append(
                "bench_tenant: partitioned placement stopped coalescing "
                f"(per-tenant factor {factor:.2f} <= 1)"
            )
    overhead = payload.get("partitioned_overhead")
    if not isinstance(overhead, (int, float)):
        failures.append("bench_tenant recorded no 'partitioned_overhead' ratio")
    elif overhead > max_tenant_overhead:
        failures.append(
            f"partitioned placement costs {overhead:.2f}x the shared wall "
            f"time (gate {max_tenant_overhead:.2f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="uniform fractional slack applied to every threshold "
        "(0.05 relaxes speedup floors by 5%% and ratio ceilings by 5%%)",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        help="write a machine-readable pass/fail report to this path",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_THRESHOLDS["min_speedup"]
    )
    parser.add_argument(
        "--min-peak-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_peak_speedup"],
    )
    parser.add_argument(
        "--min-probing-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_probing_speedup"],
    )
    parser.add_argument(
        "--max-sharded-ratio",
        type=float,
        default=DEFAULT_THRESHOLDS["max_sharded_ratio"],
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_shard_speedup"],
    )
    parser.add_argument(
        "--min-service-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_service_speedup"],
    )
    parser.add_argument(
        "--min-net-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_net_speedup"],
    )
    parser.add_argument(
        "--min-backend-ratio",
        type=float,
        default=DEFAULT_THRESHOLDS["min_backend_ratio"],
    )
    parser.add_argument(
        "--min-executor-speedup",
        type=float,
        default=DEFAULT_THRESHOLDS["min_executor_speedup"],
    )
    parser.add_argument(
        "--max-tenant-overhead",
        type=float,
        default=DEFAULT_THRESHOLDS["max_tenant_overhead"],
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    overrides = {
        "min_speedup": args.min_speedup,
        "min_peak_speedup": args.min_peak_speedup,
        "min_probing_speedup": args.min_probing_speedup,
        "max_sharded_ratio": args.max_sharded_ratio,
        "min_shard_speedup": args.min_shard_speedup,
        "min_service_speedup": args.min_service_speedup,
        "min_net_speedup": args.min_net_speedup,
        "min_backend_ratio": args.min_backend_ratio,
        "min_executor_speedup": args.min_executor_speedup,
        "max_tenant_overhead": args.max_tenant_overhead,
    }

    if not args.path.exists():
        print(f"error: {args.path} does not exist — run the engine benchmark first")
        if args.json_out is not None:
            _write_report(
                args.json_out,
                passed=False,
                failures=[f"benchmark file {args.path} does not exist"],
                tolerance=args.tolerance,
                thresholds=effective_thresholds(overrides, args.tolerance),
                sections=[],
                backends=[],
            )
        return 2
    results = json.loads(args.path.read_text())
    failures = check_results(results, tolerance=args.tolerance, **overrides)
    if args.json_out is not None:
        _write_report(
            args.json_out,
            passed=not failures,
            failures=failures,
            tolerance=args.tolerance,
            thresholds=effective_thresholds(overrides, args.tolerance),
            sections=sorted(results),
            backends=recorded_backends(results),
        )
    if failures:
        print("bench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench regression check passed")
    return 0


def _write_report(path, *, passed, failures, tolerance, thresholds, sections, backends):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "passed": passed,
                "failures": failures,
                "tolerance": tolerance,
                "effective_thresholds": thresholds,
                "checked_sections": sections,
                "backends": backends,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


if __name__ == "__main__":
    sys.exit(main())
