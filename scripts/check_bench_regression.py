#!/usr/bin/env python
"""Fail when the fused engine is slower than the legacy two-pass engine.

Reads the ``engine`` section of ``BENCH_engine.json`` (written by
``benchmarks/bench_engine.py`` or the ``@pytest.mark.engine`` smoke test) and
exits non-zero if any recorded fused-vs-legacy speedup falls below the
threshold::

    python scripts/check_bench_regression.py [--path BENCH_engine.json]
                                             [--min-speedup 1.0]
                                             [--min-peak-speedup 2.0]

``--min-speedup`` bounds every individual batch size; ``--min-peak-speedup``
bounds the best batch size (the acceptance criterion for the fused engine is
a >= 2x peak speedup on power-exposed queries against an ideal crossbar).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def check_results(
    results: dict,
    *,
    min_speedup: float = 1.0,
    min_peak_speedup: float = 2.0,
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures: list[str] = []
    engine = results.get("engine")
    if engine is None:
        return ["no 'engine' section found — run benchmarks/bench_engine.py first"]

    rows = engine.get("oracle_query", [])
    if not rows:
        failures.append("engine section has no oracle_query timings")
    for row in rows:
        if row["speedup"] < min_speedup:
            failures.append(
                f"oracle query batch={row['batch_size']}: fused path is slower "
                f"than legacy (speedup {row['speedup']:.2f} < {min_speedup:.2f})"
            )
    if rows:
        peak = max(row["speedup"] for row in rows)
        if peak < min_peak_speedup:
            failures.append(
                f"peak fused speedup {peak:.2f} is below the required "
                f"{min_peak_speedup:.2f}x"
            )

    probing = engine.get("probing")
    if probing is not None and probing["speedup"] < min_speedup:
        failures.append(
            f"batched probing is slower than the per-column reference mode "
            f"(speedup {probing['speedup']:.2f} < {min_speedup:.2f})"
        )

    ops = engine.get("array_ops_per_power_query_batch")
    if ops is not None and ops != 1:
        failures.append(
            f"power-exposed oracle query performed {ops} array traversals "
            "per batch (expected exactly 1)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH)
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument("--min-peak-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    if not args.path.exists():
        print(f"error: {args.path} does not exist — run the engine benchmark first")
        return 2
    results = json.loads(args.path.read_text())
    failures = check_results(
        results,
        min_speedup=args.min_speedup,
        min_peak_speedup=args.min_peak_speedup,
    )
    if failures:
        print("bench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
